// AS-level path oracle for dirty-set computation (docs/incremental.md).
//
// Given the converged AS-level BGP state, the oracle answers: "which ASes
// can the forwarding path from AS `from` to address `to` traverse?" — by
// replaying, at the AS level, exactly the longest-prefix decisions the
// per-router BGP install makes (routing/bgp.cpp). The trace cache uses it
// after an intra-AS flap in AS X to keep every cached trace whose forward
// path, responder set and candidate return paths all provably avoid X.
//
// The answer is a SUPERSET of the ASes any packet-level path (including
// hot-potato-asymmetric return paths, which stay inside the AS sequence)
// can touch, or `false` when the walk cannot be bounded — the caller must
// then assume the path may cross ANY AS. Over-approximation is always
// safe; the exhaustive per-link flap test in
// tests/test_convergence_parity.cpp pins that nothing is under-
// approximated.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "netbase/ipv4.h"
#include "routing/bgp.h"
#include "topo/topology.h"

namespace wormhole::routing {

class AsPathOracle {
 public:
  /// All references must outlive the oracle. The oracle snapshots the
  /// per-AS address blocks (and, in hierarchical mode, the core
  /// aggregates) into sorted tables; `level` / `policy` are read per
  /// query. Rebuild the oracle after any reconvergence that changes the
  /// AS level (ConvergenceDelta::Scope::kGlobal) — an intra-AS flap
  /// leaves the AS level untouched, so the oracle stays exact across it.
  AsPathOracle(const topo::Topology& topology, const BgpLevel& level,
               const BgpPolicy& policy);

  /// Appends to `out` every AS the converged path from `from_as` towards
  /// `to_addr` can traverse: the source AS, every transit AS of the
  /// AS-level walk, the AS whose address block owns `to_addr`, and the
  /// AS of the router (or host gateway) that owns the address itself
  /// (they differ for border-subnet addresses carved from the peer's
  /// block). Returns false when the walk cannot be bounded — unknown
  /// owner, unreachable destination, missing next-hop entry, loop guard —
  /// in which case `out`'s contents are unspecified and the caller must
  /// treat the path as possibly crossing any AS. Never returns false
  /// merely because the path is long; the guard bound is #ASes + 2.
  bool CollectPathAses(topo::AsNumber from_as, netbase::Ipv4Address to_addr,
                       std::vector<topo::AsNumber>& out) const;

  /// Convenience for tests: can the path touch `asn`? (Unbounded walks
  /// answer true — conservative.)
  [[nodiscard]] bool PathMayContain(topo::AsNumber from_as,
                                    netbase::Ipv4Address to_addr,
                                    topo::AsNumber asn) const;

  /// The AS whose address block contains `address` (0 when none). AS
  /// blocks are disjoint by construction (hierarchical aggregates cover
  /// customer blocks but `Topology::as(asn).block` is always the AS's own
  /// carve), so the owner is unique.
  [[nodiscard]] topo::AsNumber BlockOwnerOf(
      netbase::Ipv4Address address) const;

 private:
  struct OwnedPrefix {
    netbase::Prefix prefix;
    topo::AsNumber asn = 0;
  };

  /// Hierarchical mode: the core AS whose announced aggregate covers
  /// `address` (0 when none). Mirrors the aggregate routes
  /// FlattenHierarchicalExits installs.
  [[nodiscard]] topo::AsNumber AggregateOwnerOf(
      netbase::Ipv4Address address) const;
  /// The AS of the router owning `address` as an interface, or of the
  /// gateway of the host owning it (0 when neither).
  [[nodiscard]] topo::AsNumber RouterOwnerOf(
      netbase::Ipv4Address address) const;
  [[nodiscard]] bool IsStub(topo::AsNumber asn) const;
  [[nodiscard]] bool Adjacent(topo::AsNumber a, topo::AsNumber b) const;
  /// A stub's single default-route target: its first non-stub peer in
  /// ASN order (exactly FlattenHierarchicalExits' choice).
  [[nodiscard]] topo::AsNumber PrimaryProviderOf(topo::AsNumber stub) const;
  /// Uncached fallbacks for ASNs outside the flat tables below.
  [[nodiscard]] bool IsStubSlow(topo::AsNumber asn) const;
  [[nodiscard]] topo::AsNumber PrimaryProviderOfSlow(
      topo::AsNumber stub) const;

  const topo::Topology* topology_;
  const BgpLevel* level_;
  const BgpPolicy* policy_;
  /// Every AS's own block, sorted by base address (disjoint).
  std::vector<OwnedPrefix> blocks_;
  /// Hierarchical mode: each core AS's announced aggregate, sorted by
  /// base address (disjoint — gen::internet bump-allocates them).
  std::vector<OwnedPrefix> aggregates_;
  /// Flat ASN-indexed snapshots of the stub set and of every AS's
  /// first non-stub peer, so the dirty-set classifiers' per-AS queries
  /// are one load instead of a tree walk. ASNs beyond the topology's
  /// maximum fall back to the exact slow paths.
  std::vector<std::uint8_t> stub_flat_;
  std::vector<topo::AsNumber> provider_flat_;

  friend class ReturnPathClassifier;
  friend class ForwardPathClassifier;
};

/// Memoized many-source form of PathMayContain for one FIXED destination
/// address: answers "can the path from AS `from` to `to_addr` touch
/// `touched`?" for thousands of distinct sources in amortized O(1) each.
///
/// The speedup comes from the walk's shape: past the source's first hop,
/// every walk toward the same destination shares its tail, so per-AS
/// verdicts memoize with path compression (a core AS's verdict is its
/// successor's verdict unless it terminates the walk itself).
///
/// The verdict is exactly PathMayContain's — `true` for unbounded walks —
/// so it inherits the same over-approximation guarantee. Not thread-safe
/// (the memo mutates); TraceCache::Invalidate runs exclusively.
class ReturnPathClassifier {
 public:
  ReturnPathClassifier(const AsPathOracle& oracle,
                       netbase::Ipv4Address to_addr, topo::AsNumber touched);

  [[nodiscard]] bool MayContain(topo::AsNumber from_as);

 private:
  enum : std::uint8_t { kUnknown = 0, kInProgress, kClean, kDirty };

  /// Verdict of the core walk starting at `cur` (flat mode: the whole
  /// walk). Marks every node on the walked path, so later sources whose
  /// walks join it stop at the first memoized node.
  bool CoreWalkDirty(topo::AsNumber cur);

  const AsPathOracle* oracle_;
  topo::AsNumber touched_ = 0;
  topo::AsNumber owner_ = 0;
  topo::AsNumber router_owner_ = 0;
  topo::AsNumber target_core_ = 0;
  bool owner_stub_ = false;
  /// Prologue failed (unknown owner, missing next_for row, ...): every
  /// source answers dirty, matching CollectPathAses returning false.
  bool all_dirty_ = false;
  const std::map<topo::AsNumber, topo::AsNumber>* row_ = nullptr;
  /// Flat ASN-indexed memos (generated ASNs are small and dense; the
  /// tables cost a few KB and make the per-query hit path one load).
  /// Out-of-range ASNs answer dirty without being memoized.
  std::vector<std::uint8_t> core_;
  std::vector<std::uint8_t> verdicts_;
};

/// Memoized many-target form of the forward walk for one FIXED source AS:
/// Dirty(target, owner) answers "may the forward path from `from_as`
/// toward `target` cross `reply`'s touched AS, or any AS on that path
/// have a return path to `reply`'s destination that may cross it?" —
/// TraceCache::Invalidate's whole per-entry forward test except
/// RouterOwnerOf(target), which is an element of the entry's recorded
/// responder footprint and is covered by that scan instead.
///
/// Two flat memo layers exploit the walk's shape. Past the source's
/// fixed first hop, the core walk is a function of the aggregate's
/// announcer alone (one next_for row per core AS, so at most a handful
/// of distinct walks), and the final verdict a function of the target's
/// block owner: a clean announcer walk plus, for stub owners, one scan
/// of the recorded walk path for the neighbor delivering the
/// customer-block route. Both collapse thousands of per-target
/// CollectPathAses replays into amortized-O(1) lookups.
///
/// Every deviation from the exact per-target walk over-approximates
/// toward dirty (e.g. a walk the exact code would stop early at a
/// customer-block neighbor still has its full tail reply-checked), and
/// unbounded walks answer dirty, exactly like CollectPathAses returning
/// false. `reply` must outlive the classifier and answer for the same
/// flap; its memo is shared and mutated. Not thread-safe.
class ForwardPathClassifier {
 public:
  ForwardPathClassifier(const AsPathOracle& oracle,
                        ReturnPathClassifier& reply, topo::AsNumber from_as);

  [[nodiscard]] bool Dirty(netbase::Ipv4Address target,
                           topo::AsNumber owner);

 private:
  enum : std::uint8_t { kUnknown = 0, kClean, kDirty };

  [[nodiscard]] bool ComputeDirty(netbase::Ipv4Address target,
                                  topo::AsNumber owner);
  /// Walks next_for[announcer] from start_ to the announcer, recording
  /// the path (for the stub-owner adjacency scan) and folding the
  /// reply-path verdict of every AS on it into core_state_[announcer].
  void WalkCore(topo::AsNumber announcer);
  /// Index into adj_store_ of `asn`'s peer bitmap, built on first use.
  [[nodiscard]] std::uint32_t AdjBitmapOf(topo::AsNumber asn);

  const AsPathOracle* oracle_;
  ReturnPathClassifier* reply_;
  topo::AsNumber from_as_ = 0;
  /// First core AS of every walk: the stub source's primary provider in
  /// hierarchical mode, the source itself otherwise.
  topo::AsNumber start_ = 0;
  /// Source-side prologue failed (unknown source AS, stub without a
  /// provider) or the source/provider's own reply path is dirty — every
  /// forward path shares those ASes, so every target answers dirty.
  bool all_dirty_ = false;
  /// Per-owner final verdicts and per-announcer walk verdicts, flat
  /// ASN-indexed like ReturnPathClassifier's memos; out-of-range ASNs
  /// answer dirty without being memoized.
  std::vector<std::uint8_t> owner_state_;
  std::vector<std::uint8_t> core_state_;
  /// Clean announcer walks keep their path as a slice of pool_ for the
  /// stub-owner adjacency scans; pool_adj_[i] indexes adj_store_ at the
  /// adjacency bitmap of pool_[i], so each scan is pure array loads.
  std::vector<std::uint32_t> path_begin_;
  std::vector<std::uint32_t> path_end_;
  std::vector<topo::AsNumber> pool_;
  std::vector<std::uint32_t> pool_adj_;
  /// One ASN-indexed peer bitmap per distinct path AS (a handful of
  /// core ASes), built the first time a clean walk records that AS.
  std::vector<std::vector<std::uint8_t>> adj_store_;
  std::map<topo::AsNumber, std::uint32_t> adj_of_;
};

}  // namespace wormhole::routing
