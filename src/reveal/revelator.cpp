#include "reveal/revelator.h"

#include <algorithm>

namespace wormhole::reveal {

const char* ToString(RevelationMethod method) {
  switch (method) {
    case RevelationMethod::kNone: return "none";
    case RevelationMethod::kDpr: return "DPR";
    case RevelationMethod::kBrpr: return "BRPR";
    case RevelationMethod::kEither: return "DPR or BRPR";
    case RevelationMethod::kHybrid: return "hybrid DPR/BRPR";
  }
  return "?";
}

RevelationMethod ClassifyBatches(const std::vector<int>& batch_sizes) {
  if (batch_sizes.empty()) return RevelationMethod::kNone;
  int total = 0;
  for (const int b : batch_sizes) total += b;
  if (total == 1) return RevelationMethod::kEither;
  const bool any_multi =
      std::any_of(batch_sizes.begin(), batch_sizes.end(),
                  [](int b) { return b > 1; });
  const bool any_single =
      std::any_of(batch_sizes.begin(), batch_sizes.end(),
                  [](int b) { return b == 1; });
  if (any_multi && any_single) return RevelationMethod::kHybrid;
  return any_multi ? RevelationMethod::kDpr : RevelationMethod::kBrpr;
}

Revelator::Revelator(probe::Prober& prober, RevelatorOptions options)
    : prober_(&prober), options_(options) {}

std::vector<netbase::Ipv4Address> Revelator::HopsBetween(
    const probe::TraceResult& trace, netbase::Ipv4Address after,
    netbase::Ipv4Address before) {
  std::vector<netbase::Ipv4Address> out;
  bool in_window = false;
  for (const probe::Hop& hop : trace.hops) {
    if (!hop.address) {
      // An anonymous hop inside the window spoils the ordering guarantee.
      if (in_window) return {};
      continue;
    }
    if (*hop.address == after) {
      in_window = true;
      out.clear();
      continue;
    }
    if (*hop.address == before) {
      return in_window ? out : std::vector<netbase::Ipv4Address>{};
    }
    if (in_window) out.push_back(*hop.address);
  }
  return {};  // window never closed: the trace did not reach `before`
}

RevelationResult Revelator::Reveal(netbase::Ipv4Address x,
                                   netbase::Ipv4Address y) {
  RevelationResult result;
  result.ingress = x;
  result.egress = y;

  std::set<netbase::Ipv4Address> known{x, y};
  netbase::Ipv4Address target = y;

  for (int depth = 0; depth < options_.max_recursion; ++depth) {
    const probe::TraceResult trace =
        prober_->Traceroute(target, options_.trace_options);
    ++result.traces_used;

    std::vector<netbase::Ipv4Address> batch;
    for (const netbase::Ipv4Address hop : HopsBetween(trace, x, target)) {
      if (!known.contains(hop)) batch.push_back(hop);
    }
    if (batch.empty()) break;  // nothing new, or the trace avoided X

    // The batch sits immediately after X: it precedes everything revealed
    // so far (we recurse backwards towards the ingress).
    result.revealed.insert(result.revealed.begin(), batch.begin(),
                           batch.end());
    result.batch_sizes.push_back(static_cast<int>(batch.size()));
    known.insert(batch.begin(), batch.end());
    target = batch.front();  // the hop nearest the ingress
  }

  result.method = ClassifyBatches(result.batch_sizes);
  return result;
}

}  // namespace wormhole::reveal
