// Fixture: fan-out through the exec facilities is the sanctioned form
// of concurrency outside src/exec — zero findings.
#include <cstddef>
#include <vector>

#include "exec/thread_pool.h"

namespace wormhole::routing {

std::vector<int> SquareAll(exec::ThreadPool* pool, int n) {
  std::vector<int> out(static_cast<std::size_t>(n));
  exec::ParallelFor(pool, out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i * i);
  });
  return out;
}

}  // namespace wormhole::routing
