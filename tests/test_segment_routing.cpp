// SR-MPLS extension: node-SID stacks, waypoint steering, and traceroute
// visibility of SR policies.
#include <gtest/gtest.h>

#include "mpls/segment_routing.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "topo/topology.h"

namespace wormhole::mpls {
namespace {

using topo::RouterId;
using topo::Vendor;

// AS1(gw) | AS2 ring: in - a - b - out and in - c - out | AS3(dst).
// The IGP prefers in-c-out (shorter); SR policies detour via a, b.
struct SrWorld {
  topo::Topology topology;
  std::unique_ptr<MplsConfigMap> configs;
  SrDatabase sr;
  std::unique_ptr<sim::Network> network;
  netbase::Ipv4Address vp;
  RouterId gw, in, a, b, c, out, dst;

  explicit SrWorld(bool propagate = true) {
    topology.AddAs(1, "src");
    topology.AddAs(2, "sr");
    topology.AddAs(3, "dst");
    gw = topology.AddRouter(1, "gw", Vendor::kCiscoIos);
    in = topology.AddRouter(2, "in", Vendor::kCiscoIos);
    a = topology.AddRouter(2, "a", Vendor::kCiscoIos);
    b = topology.AddRouter(2, "b", Vendor::kCiscoIos);
    c = topology.AddRouter(2, "c", Vendor::kCiscoIos);
    out = topology.AddRouter(2, "out", Vendor::kCiscoIos);
    dst = topology.AddRouter(3, "dst", Vendor::kCiscoIos);
    topology.AddLink(gw, in);
    topology.AddLink(in, a);
    topology.AddLink(a, b);
    topology.AddLink(b, out);
    topology.AddLink(in, c);
    topology.AddLink(c, out);
    topology.AddLink(out, dst);
    vp = topology.AttachHost(gw, "VP");

    configs = std::make_unique<MplsConfigMap>(topology);
    MplsConfigMap::AsOptions options;
    options.ttl_propagate = propagate;
    // LDP loopback-only so plain traffic stays IP unless SR steers it
    // (keeps the test focused on the SR labels).
    options.ldp_policy = LdpPolicy::kLoopbacksOnly;
    configs->EnableAs(2, options);
    sr.EnableAs(topology, 2);
  }

  void Converge() {
    network = std::make_unique<sim::Network>(
        topology, *configs, routing::BgpPolicy{.stub_ases = {1, 3}},
        sim::EngineOptions{}, nullptr, &sr);
  }

  std::string Name(netbase::Ipv4Address address) const {
    const auto router = topology.FindRouterByAddress(address);
    return router ? topology.router(*router).name : address.ToString();
  }
};

TEST(SrDatabase, ValidatesPolicies) {
  SrWorld world;
  SrPolicy empty;
  empty.ingress = world.in;
  EXPECT_THROW(world.sr.AddPolicy(world.topology, empty),
               std::invalid_argument);
  SrPolicy foreign;
  foreign.ingress = world.in;
  foreign.waypoints = {world.gw};  // not in the SR domain
  EXPECT_THROW(world.sr.AddPolicy(world.topology, foreign),
               std::invalid_argument);
  SrPolicy bad_ingress;
  bad_ingress.ingress = world.gw;
  bad_ingress.waypoints = {world.a};
  EXPECT_THROW(world.sr.AddPolicy(world.topology, bad_ingress),
               std::invalid_argument);
}

TEST(SrDatabase, SidLookup) {
  SrWorld world;
  EXPECT_EQ(world.sr.RouterOfSid(NodeSid(world.a)),
            std::optional<RouterId>(world.a));
  EXPECT_FALSE(world.sr.RouterOfSid(NodeSid(world.gw)).has_value());
  EXPECT_FALSE(world.sr.RouterOfSid(17).has_value());
}

TEST(SrPolicySteering, DetoursViaWaypoints) {
  SrWorld world(/*propagate=*/true);
  SrPolicy policy;
  policy.ingress = world.in;
  policy.prefix = world.topology.as(3).block;
  policy.waypoints = {world.b, world.out};  // forces the long way via a-b
  world.sr.AddPolicy(world.topology, policy);
  world.Converge();

  probe::Prober prober(world.network->engine(), world.vp);
  const auto trace =
      prober.Traceroute(world.topology.router(world.dst).loopback);
  ASSERT_TRUE(trace.reached);
  // gw, in, a, b, out, dst — the detour, not in-c-out.
  std::vector<std::string> names;
  for (const auto& hop : trace.hops) {
    ASSERT_TRUE(hop.address.has_value());
    names.push_back(world.Name(*hop.address));
  }
  EXPECT_EQ(names, (std::vector<std::string>{"gw", "in", "a", "b", "out",
                                             "dst"}));
  // Mid-segment hops quote the SID (RFC 4950 applies to SR-MPLS too).
  EXPECT_TRUE(trace.hops[2].has_labels());
  EXPECT_EQ(trace.hops[2].labels[0].label, NodeSid(world.b));
}

TEST(SrPolicySteering, InvisibleWithoutTtlPropagate) {
  SrWorld world(/*propagate=*/false);
  SrPolicy policy;
  policy.ingress = world.in;
  policy.prefix = world.topology.as(3).block;
  policy.waypoints = {world.b, world.out};
  world.sr.AddPolicy(world.topology, policy);
  world.Converge();

  probe::Prober prober(world.network->engine(), world.vp);
  const auto trace =
      prober.Traceroute(world.topology.router(world.dst).loopback);
  ASSERT_TRUE(trace.reached);
  // The SR detour hides a and b: gw, in, [a, b hidden], "b is waypoint —
  // also hidden: it handles the packet in label space], out, dst.
  std::vector<std::string> names;
  for (const auto& hop : trace.hops) {
    if (hop.address) names.push_back(world.Name(*hop.address));
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"gw", "in", "out", "dst"}));
}

TEST(SrPolicySteering, AdjacentFirstWaypointSkipsItsSid) {
  SrWorld world;
  SrPolicy policy;
  policy.ingress = world.in;
  policy.prefix = world.topology.as(3).block;
  policy.waypoints = {world.a, world.out};  // a is adjacent to in
  world.sr.AddPolicy(world.topology, policy);
  world.Converge();

  probe::Prober prober(world.network->engine(), world.vp);
  const auto trace =
      prober.Traceroute(world.topology.router(world.dst).loopback);
  ASSERT_TRUE(trace.reached);
  std::vector<std::string> names;
  for (const auto& hop : trace.hops) {
    if (hop.address) names.push_back(world.Name(*hop.address));
  }
  // Path goes via a (waypoint honoured) and then a's shortest way to out
  // (via b).
  EXPECT_EQ(names, (std::vector<std::string>{"gw", "in", "a", "b", "out",
                                             "dst"}));
}

TEST(SrPolicySteering, MostSpecificPrefixWins) {
  SrWorld world;
  SrPolicy broad;
  broad.ingress = world.in;
  broad.prefix = world.topology.as(3).block;
  broad.waypoints = {world.c};
  world.sr.AddPolicy(world.topology, broad);
  SrPolicy narrow;
  narrow.ingress = world.in;
  narrow.prefix =
      netbase::Prefix::Host(world.topology.router(world.dst).loopback);
  narrow.waypoints = {world.b};
  world.sr.AddPolicy(world.topology, narrow);

  const auto* chosen = world.sr.PolicyFor(
      world.in, world.topology.router(world.dst).loopback);
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->waypoints.front(), world.b);
}

}  // namespace
}  // namespace wormhole::mpls
