file(REMOVE_RECURSE
  "../bench/table04_discovery"
  "../bench/table04_discovery.pdb"
  "CMakeFiles/table04_discovery.dir/table04_discovery.cpp.o"
  "CMakeFiles/table04_discovery.dir/table04_discovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
