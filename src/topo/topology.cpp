#include "topo/topology.h"

#include <algorithm>
#include <stdexcept>

namespace wormhole::topo {

namespace {

// Synthetic "public" space: each AS gets a /16 carved out of 5.0.0.0/8.
constexpr std::uint32_t kBlockBase = 0x05000000;  // 5.0.0.0

}  // namespace

const char* ToString(Vendor vendor) {
  switch (vendor) {
    case Vendor::kCiscoIos: return "Cisco IOS";
    case Vendor::kCiscoIosXr: return "Cisco IOS XR";
    case Vendor::kJuniperJunos: return "Juniper Junos";
    case Vendor::kJuniperJunosE: return "Juniper JunosE";
    case Vendor::kBrocade: return "Brocade";
    case Vendor::kLinux: return "Linux";
  }
  return "?";
}

AsNumber Topology::AddAs(AsNumber asn, std::string name) {
  if (as_index_.contains(asn)) {
    throw std::invalid_argument("AS " + std::to_string(asn) +
                                " already exists");
  }
  AutonomousSystem as;
  as.asn = asn;
  as.name = std::move(name);
  // /16 block: 5.b.h.l where b increments per AS; spill into 6.0.0.0/8 etc.
  const std::uint32_t block = next_block_++;
  as.block = Prefix(Ipv4Address(kBlockBase + (block << 16)), 16);
  as_index_[asn] = ases_.size();
  ases_.push_back(std::move(as));
  next_offset_[asn] = 0;
  ++version_;
  return asn;
}

const AutonomousSystem& Topology::as(AsNumber asn) const {
  const auto it = as_index_.find(asn);
  if (it == as_index_.end()) {
    throw std::out_of_range("unknown AS " + std::to_string(asn));
  }
  return ases_[it->second];
}

std::vector<AsNumber> Topology::AsNumbers() const {
  std::vector<AsNumber> out;
  out.reserve(ases_.size());
  for (const auto& as : ases_) out.push_back(as.asn);
  return out;
}

Prefix Topology::AllocateSubnet(AsNumber asn, int length) {
  const auto& as = this->as(asn);
  auto& offset = next_offset_[asn];
  const auto size = static_cast<std::uint32_t>(
      std::uint64_t{1} << (32 - length));
  // Align the offset to the subnet size.
  offset = (offset + size - 1) & ~(size - 1);
  if (offset + size > as.block.size()) {
    throw std::runtime_error("AS " + std::to_string(asn) +
                             " address block exhausted");
  }
  const Prefix subnet(as.block.At(offset), length);
  offset += size;
  return subnet;
}

RouterId Topology::AddRouter(AsNumber asn, std::string name, Vendor vendor) {
  const auto it = as_index_.find(asn);
  if (it == as_index_.end()) {
    throw std::invalid_argument("AddRouter: unknown AS " +
                                std::to_string(asn));
  }
  if (name_to_router_.contains(name)) {
    throw std::invalid_argument("duplicate router name: " + name);
  }

  const RouterId id = static_cast<RouterId>(routers_.size());
  Router router;
  router.id = id;
  router.name = std::move(name);
  router.asn = asn;
  router.vendor = vendor;

  const Prefix loopback = AllocateSubnet(asn, 32);
  router.loopback = loopback.address();

  Interface lo;
  lo.id = static_cast<InterfaceId>(interfaces_.size());
  lo.router = id;
  lo.link = kNoLink;
  lo.address = loopback.address();
  lo.subnet = loopback;
  lo.name = router.name + ".lo";
  router.loopback_interface = lo.id;

  address_to_router_[lo.address] = id;
  address_to_interface_[lo.address] = lo.id;
  name_to_router_[router.name] = id;
  interfaces_.push_back(std::move(lo));
  ases_[it->second].routers.push_back(id);
  routers_.push_back(std::move(router));
  ++version_;
  return id;
}

LinkId Topology::AddLink(RouterId a, RouterId b, LinkOptions options) {
  if (a == b) throw std::invalid_argument("AddLink: self-loop");
  Router& ra = routers_.at(a);
  Router& rb = routers_.at(b);

  const AsNumber owner_asn = std::min(ra.asn, rb.asn);
  const Prefix subnet = AllocateSubnet(owner_asn, 31);

  const LinkId link_id = static_cast<LinkId>(links_.size());
  Link link;
  link.id = link_id;
  link.subnet = subnet;
  link.igp_metric = options.igp_metric;
  link.delay_ms = options.delay_ms;

  // Interface naming mirrors the paper's "X.if<n>" style; the GNS3 builder
  // overrides these with ".left"/".right" labels.
  const auto make_interface = [&](Router& router, std::uint32_t host) {
    Interface iface;
    iface.id = static_cast<InterfaceId>(interfaces_.size());
    iface.router = router.id;
    iface.link = link_id;
    iface.address = subnet.At(host);
    iface.subnet = subnet;
    iface.name = router.name + ".if" +
                 std::to_string(router.interfaces.size());
    address_to_router_[iface.address] = router.id;
    address_to_interface_[iface.address] = iface.id;
    router.interfaces.push_back(iface.id);
    interfaces_.push_back(iface);
    return iface.id;
  };

  link.a = make_interface(ra, 0);
  link.b = make_interface(rb, 1);
  links_.push_back(link);
  ++version_;
  return link_id;
}

Ipv4Address Topology::AttachHost(RouterId gateway, std::string name) {
  Router& router = routers_.at(gateway);
  const Prefix subnet = AllocateSubnet(router.asn, 31);

  Interface stub;
  stub.id = static_cast<InterfaceId>(interfaces_.size());
  stub.router = gateway;
  stub.link = kNoLink;
  stub.address = subnet.At(0);
  stub.subnet = subnet;
  stub.name = router.name + ".stub" + std::to_string(hosts_.size());
  address_to_router_[stub.address] = gateway;
  address_to_interface_[stub.address] = stub.id;
  router.interfaces.push_back(stub.id);

  Host host;
  host.address = subnet.At(1);
  host.gateway = gateway;
  host.stub_interface = stub.id;
  host.name = std::move(name);
  host_index_[host.address] = hosts_.size();
  interfaces_.push_back(std::move(stub));
  hosts_.push_back(std::move(host));
  ++version_;
  return hosts_.back().address;
}

const Host* Topology::FindHost(Ipv4Address address) const {
  const auto it = host_index_.find(address);
  return it == host_index_.end() ? nullptr : &hosts_[it->second];
}

std::optional<RouterId> Topology::FindRouterByAddress(
    Ipv4Address address) const {
  const auto it = address_to_router_.find(address);
  if (it == address_to_router_.end()) return std::nullopt;
  return it->second;
}

std::optional<InterfaceId> Topology::FindInterfaceByAddress(
    Ipv4Address address) const {
  const auto it = address_to_interface_.find(address);
  if (it == address_to_interface_.end()) return std::nullopt;
  return it->second;
}

std::optional<RouterId> Topology::FindRouterByName(
    std::string_view name) const {
  const auto it = name_to_router_.find(std::string(name));
  if (it == name_to_router_.end()) return std::nullopt;
  return it->second;
}

const Interface& Topology::EndOn(LinkId link, RouterId router) const {
  const Link& l = links_.at(link);
  const Interface& ia = interfaces_.at(l.a);
  if (ia.router == router) return ia;
  const Interface& ib = interfaces_.at(l.b);
  if (ib.router == router) return ib;
  throw std::invalid_argument("router not on link");
}

const Interface& Topology::OtherEnd(LinkId link, RouterId router) const {
  const Link& l = links_.at(link);
  const Interface& ia = interfaces_.at(l.a);
  const Interface& ib = interfaces_.at(l.b);
  if (ia.router == router) return ib;
  if (ib.router == router) return ia;
  throw std::invalid_argument("router not on link");
}

RouterId Topology::Neighbor(LinkId link, RouterId router) const {
  return OtherEnd(link, router).router;
}

std::vector<std::pair<RouterId, LinkId>> Topology::Neighbors(
    RouterId router) const {
  std::vector<std::pair<RouterId, LinkId>> out;
  const Router& r = routers_.at(router);
  out.reserve(r.interfaces.size());
  for (const InterfaceId iid : r.interfaces) {
    const Interface& iface = interfaces_.at(iid);
    if (iface.link == kNoLink) continue;  // host stub, no router across it
    if (!links_.at(iface.link).up) continue;
    out.emplace_back(Neighbor(iface.link, router), iface.link);
  }
  return out;
}

std::vector<Prefix> Topology::ConnectedPrefixes(RouterId router) const {
  std::vector<Prefix> out;
  const Router& r = routers_.at(router);
  out.push_back(Prefix::Host(r.loopback));
  for (const InterfaceId iid : r.interfaces) {
    const Interface& iface = interfaces_.at(iid);
    // Connected routes are withdrawn while the link is down.
    if (iface.link != kNoLink && !links_.at(iface.link).up) continue;
    out.push_back(iface.subnet);
  }
  return out;
}

std::vector<Prefix> Topology::InternalPrefixes(AsNumber asn) const {
  std::vector<Prefix> out;
  for (const RouterId rid : as(asn).routers) {
    out.push_back(Prefix::Host(routers_.at(rid).loopback));
  }
  for (const Link& link : links_) {
    if (!link.up || !IsInternalLink(link.id)) continue;
    if (routers_.at(interfaces_.at(link.a).router).asn == asn) {
      out.push_back(link.subnet);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Topology::IsInternalLink(LinkId link) const {
  const Link& l = links_.at(link);
  return routers_.at(interfaces_.at(l.a).router).asn ==
         routers_.at(interfaces_.at(l.b).router).asn;
}

AsNumber Topology::AsOfAddress(Ipv4Address address) const {
  const auto router = FindRouterByAddress(address);
  return router ? routers_.at(*router).asn : 0;
}

}  // namespace wormhole::topo
