// The paper's operator survey (Aug 28 – Sep 12, 2017; 50 answers from Stub
// to Tier-1 ISPs via direct contact and NANOG). These constants
// parameterise the synthetic Internet generator and document where the
// default `InternetOptions` probabilities come from.
#pragma once

namespace wormhole::gen::survey {

/// Share of surveyed operators deploying MPLS at all.
inline constexpr double kMplsDeployment = 0.87;

/// Label distribution (among MPLS deployers).
inline constexpr double kLdpOnly = 0.50;
inline constexpr double kLdpPlusRsvpTe = 0.42;
inline constexpr double kRsvpTeOnly = 0.08;

/// Share of operators using the no-ttl-propagate option — the invisible
/// tunnel population.
inline constexpr double kNoTtlPropagate = 0.48;

/// Share of operators deploying Ultimate Hop Popping.
inline constexpr double kUhp = 0.10;

/// Hardware (multi-select in the survey: mixes overlap the brands).
inline constexpr double kCisco = 0.58;
inline constexpr double kJuniper = 0.28;
inline constexpr double kMixedVendors = 0.25;

}  // namespace wormhole::gen::survey
