# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build_base/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("exec")
subdirs("netbase")
subdirs("topo")
subdirs("routing")
subdirs("mpls")
subdirs("sim")
subdirs("probe")
subdirs("io")
subdirs("fingerprint")
subdirs("reveal")
subdirs("gen")
subdirs("campaign")
subdirs("analysis")
