file(REMOVE_RECURSE
  "libwormhole_gen.a"
)
