// Shared setup for the reproduction benches: the "flagship" synthetic
// Internet and campaign every table/figure bench runs against, so numbers
// are consistent across binaries (same seed, same world).
#pragma once

#include <iostream>
#include <memory>

#include "campaign/campaign.h"
#include "gen/internet.h"

namespace wormhole::bench {

inline constexpr std::uint64_t kFlagshipSeed = 29;

inline gen::InternetOptions FlagshipOptions() {
  gen::InternetOptions options;
  options.seed = kFlagshipSeed;
  options.tier1_count = 3;
  options.transit_count = 12;
  options.stub_count = 40;
  options.vp_count = 12;
  return options;
}

struct FlagshipWorld {
  std::unique_ptr<gen::SyntheticInternet> net;
  campaign::CampaignResult result;
};

inline FlagshipWorld RunFlagshipCampaign(
    campaign::CampaignOptions options = {}) {
  FlagshipWorld world;
  world.net = std::make_unique<gen::SyntheticInternet>(FlagshipOptions());
  campaign::Campaign campaign(world.net->engine(),
                              world.net->vantage_points(), options);
  world.result = campaign.Run(world.net->AllLoopbacks());
  return world;
}

inline void PrintHeader(const std::string& what, const std::string& paper) {
  std::cout << "==========================================================\n"
            << what << "\n(reproduces " << paper
            << " of Vanaubel et al., IMC 2017)\n"
            << "==========================================================\n";
}

}  // namespace wormhole::bench
