// SR-MPLS (Segment Routing) in converged form — the "other labeling
// protocol" one surveyed operator runs (paper Sec. 2.1 fn. 4): no LDP or
// RSVP-TE signalling; the ingress imposes a *stack* of global node-SID
// labels and each segment endpoint consumes its own SID, with ordinary IGP
// forwarding between waypoints.
//
// Model: SRGB-global node SIDs, label = kSrgbBase + router id. A router
// holding a packet whose top SID is its own pops it (min-TTL rule, like a
// PHP pop of the segment) and continues with the inner label or the IP
// header; otherwise it label-switches towards the SID's router along the
// IGP shortest path.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netbase/ipv4.h"
#include "topo/topology.h"

namespace wormhole::mpls {

/// Base of the global SRGB; far above the LDP and RSVP-TE label spaces.
constexpr std::uint32_t kSrgbBase = 400000;

inline std::uint32_t NodeSid(topo::RouterId router) {
  return kSrgbBase + router;
}

/// An SR steering policy at one ingress: traffic to `prefix` gets the SID
/// list of `waypoints` (visited in order; the last is the policy endpoint).
struct SrPolicy {
  topo::RouterId ingress = topo::kNoRouter;
  netbase::Prefix prefix;
  std::vector<topo::RouterId> waypoints;
};

class SrDatabase {
 public:
  SrDatabase() = default;

  /// Enables SR for every router of an AS (they recognise node SIDs).
  void EnableAs(const topo::Topology& topology, topo::AsNumber asn);

  /// Installs a steering policy. All waypoints must be SR-enabled routers
  /// of the ingress's AS; throws std::invalid_argument otherwise.
  void AddPolicy(const topo::Topology& topology, const SrPolicy& policy);

  [[nodiscard]] bool Enabled(topo::RouterId router) const {
    return enabled_.contains(router);
  }

  /// Which router does this label name, if it is a node SID known here?
  [[nodiscard]] std::optional<topo::RouterId> RouterOfSid(
      std::uint32_t label) const;

  /// The steering policy at `router` covering `dst` (most specific wins).
  [[nodiscard]] const SrPolicy* PolicyFor(topo::RouterId router,
                                          netbase::Ipv4Address dst) const;

  [[nodiscard]] bool empty() const { return policies_.empty(); }

 private:
  std::unordered_map<topo::RouterId, bool> enabled_;
  std::unordered_map<topo::RouterId, std::vector<SrPolicy>> policies_;
};

}  // namespace wormhole::mpls
