#include "campaign/compact_trace.h"

#include "netbase/contracts.h"

namespace wormhole::campaign {

void CompactTraceLog::Append(const probe::TraceResult& trace) {
  Header header;
  header.source = trace.source;
  header.target = trace.target;
  header.hop_begin = static_cast<std::uint32_t>(hops_.size());
  header.flow_id = trace.flow_id;
  header.first_ttl =
      trace.hops.empty()
          ? 0
          : static_cast<std::uint8_t>(trace.hops.front().probe_ttl);
  header.flags = static_cast<std::uint8_t>((trace.reached ? 1 : 0) |
                                           (trace.unreachable ? 2 : 0));
  traces_.push_back(header);

  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    const probe::Hop& hop = trace.hops[i];
    WORMHOLE_DCHECK(hop.probe_ttl ==
                        trace.hops.front().probe_ttl + static_cast<int>(i),
                    "compact log requires consecutive hop TTLs");
    PackedHop packed;
    if (hop.address) {
      packed.address = hop.address->value();
      packed.reply_kind = static_cast<std::uint8_t>(hop.reply_kind);
      packed.reply_ip_ttl = static_cast<std::uint8_t>(hop.reply_ip_ttl);
    }
    hops_.push_back(packed);
  }
}

void CompactTraceLog::AppendFrom(const CompactTraceLog& other,
                                 std::size_t i) {
  Header header = other.traces_.at(i);
  const std::size_t hop_end = i + 1 < other.traces_.size()
                                  ? other.traces_[i + 1].hop_begin
                                  : other.hops_.size();
  const std::size_t hop_begin = header.hop_begin;
  header.hop_begin = static_cast<std::uint32_t>(hops_.size());
  traces_.push_back(header);
  hops_.insert(hops_.end(), other.hops_.begin() + hop_begin,
               other.hops_.begin() + hop_end);
}

probe::TraceResult CompactTraceLog::Inflate(std::size_t i) const {
  probe::TraceResult out;
  InflateInto(i, out);
  return out;
}

void CompactTraceLog::InflateInto(std::size_t i,
                                  probe::TraceResult& out) const {
  const Header& header = traces_.at(i);
  const std::size_t hop_end = i + 1 < traces_.size()
                                  ? traces_[i + 1].hop_begin
                                  : hops_.size();

  out.source = header.source;
  out.target = header.target;
  out.flow_id = header.flow_id;
  out.reached = (header.flags & 1) != 0;
  out.unreachable = (header.flags & 2) != 0;
  out.hops.clear();
  out.hops.reserve(hop_end - header.hop_begin);
  for (std::size_t h = header.hop_begin; h < hop_end; ++h) {
    const PackedHop& packed = hops_[h];
    probe::Hop hop;
    hop.probe_ttl = header.first_ttl +
                    static_cast<int>(h - header.hop_begin);
    if (packed.address != 0) {
      hop.address = netbase::Ipv4Address(packed.address);
      hop.reply_kind = static_cast<netbase::PacketKind>(packed.reply_kind);
      hop.reply_ip_ttl = packed.reply_ip_ttl;
    }
    out.hops.push_back(std::move(hop));
  }
}

}  // namespace wormhole::campaign
