// FRPLA — Forward/Return Path Length Analysis (paper Sec. 3.1).
//
// For a hop that answered a traceroute probe, the *forward* path length is
// the probe TTL it answered at; the *return* path length is inferred from
// the reply's remaining TTL (initial TTL rounded up to 64/128/255 minus the
// received value). An invisible forward tunnel hides hops from the forward
// count but — thanks to the min(TTL) rule on the return LSP — not from the
// return count, so the Return-Forward Asymmetry (RFA) shifts positive.
//
// FRPLA is statistical: per AS, over many vantage points, plain routing
// asymmetry averages out (a normal law centred near 0) and a positive
// median shift betrays invisible tunnels and estimates their mean length.
#pragma once

#include <map>

#include "netbase/ipv4.h"
#include "netbase/stats.h"
#include "probe/trace.h"
#include "topo/topology.h"

namespace wormhole::reveal {

/// One RFA sample from one responding traceroute hop.
struct RfaObservation {
  netbase::Ipv4Address responder;
  /// Probe TTL the responder answered at (forward length, tunnels hidden).
  int forward_length = 0;
  /// Return path length inferred from the reply TTL (tunnels included).
  int return_length = 0;

  [[nodiscard]] int rfa() const { return return_length - forward_length; }
};

/// Return path length from a reply's remaining TTL: inferred initial TTL
/// minus received, plus one for the final delivery segment to the vantage
/// point (which decrements nothing) — this recentres symmetric routing on
/// RFA 0 and matches the paper's worked example (PE2 at 6 hops, reply TTL
/// 250 => return length 6).
int ReturnPathLength(int reply_ip_ttl);

/// Builds the observation for a responding hop; nullopt for timeouts.
std::optional<RfaObservation> ObserveRfa(const probe::Hop& hop);

/// What the responder was, for the paper's Fig. 7 breakdown.
enum class ResponderRole : std::uint8_t {
  kOther,           ///< not an HDN / not a tunnel endpoint candidate
  kIngress,         ///< candidate Ingress LER
  kEgressRevealed,  ///< Egress LER with a path-revealed forward tunnel
  kEgressHidden,    ///< Egress LER candidate, no revelation succeeded
};

/// Per-AS aggregation of RFA samples, by responder role.
class FrplaAnalysis {
 public:
  void Add(topo::AsNumber asn, ResponderRole role,
           const RfaObservation& observation);

  /// RFA distribution of one AS and role (empty if none).
  [[nodiscard]] const netbase::IntDistribution& Distribution(
      topo::AsNumber asn, ResponderRole role) const;
  /// RFA distribution across all ASes for a role.
  [[nodiscard]] netbase::IntDistribution Combined(ResponderRole role) const;

  /// The FRPLA tunnel-length estimate for an AS: the median RFA of its
  /// egress responders (Table 5's "FRPLA" column).
  [[nodiscard]] std::optional<int> EstimatedTunnelLength(
      topo::AsNumber asn) const;

  /// ASes with at least one sample.
  [[nodiscard]] std::vector<topo::AsNumber> Ases() const;

 private:
  std::map<std::pair<topo::AsNumber, ResponderRole>, netbase::IntDistribution>
      per_as_;
};

}  // namespace wormhole::reveal
