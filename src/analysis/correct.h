// Correcting an inferred router-level dataset with revelation results
// (paper Sec. 7): for every revealed tunnel, the false Ingress—Egress link
// is replaced by the chain Ingress—H1—…—Hn—Egress, deflating node degrees
// and graph density back towards reality.
#pragma once

#include <map>

#include "campaign/campaign.h"
#include "topo/itdk.h"

namespace wormhole::analysis {

struct CorrectionStats {
  std::size_t tunnels_applied = 0;
  std::size_t false_links_removed = 0;
  std::size_t links_added = 0;
  std::size_t addresses_mapped = 0;   ///< revealed IPs mapped to known nodes
  std::size_t addresses_new = 0;      ///< revealed IPs needing new nodes
};

/// Applies all successful revelations to `dataset` in place. Revealed
/// addresses are alias-resolved with `resolver` (the paper maps 97% of them
/// into ITDK nodes; with the truth resolver we map whatever the topology
/// knows).
CorrectionStats ApplyRevelations(
    topo::ItdkDataset& dataset,
    const std::map<campaign::EndpointPair, reveal::RevelationResult>&
        revelations,
    const campaign::AliasResolver& resolver,
    const topo::Topology& topology);

/// Convenience: copy + correct.
topo::ItdkDataset CorrectedCopy(
    const topo::ItdkDataset& dataset,
    const std::map<campaign::EndpointPair, reveal::RevelationResult>&
        revelations,
    const campaign::AliasResolver& resolver, const topo::Topology& topology);

}  // namespace wormhole::analysis
