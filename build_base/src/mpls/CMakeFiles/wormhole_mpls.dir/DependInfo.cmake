
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpls/config.cpp" "src/mpls/CMakeFiles/wormhole_mpls.dir/config.cpp.o" "gcc" "src/mpls/CMakeFiles/wormhole_mpls.dir/config.cpp.o.d"
  "/root/repo/src/mpls/ldp.cpp" "src/mpls/CMakeFiles/wormhole_mpls.dir/ldp.cpp.o" "gcc" "src/mpls/CMakeFiles/wormhole_mpls.dir/ldp.cpp.o.d"
  "/root/repo/src/mpls/rsvp_te.cpp" "src/mpls/CMakeFiles/wormhole_mpls.dir/rsvp_te.cpp.o" "gcc" "src/mpls/CMakeFiles/wormhole_mpls.dir/rsvp_te.cpp.o.d"
  "/root/repo/src/mpls/segment_routing.cpp" "src/mpls/CMakeFiles/wormhole_mpls.dir/segment_routing.cpp.o" "gcc" "src/mpls/CMakeFiles/wormhole_mpls.dir/segment_routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_base/src/routing/CMakeFiles/wormhole_routing.dir/DependInfo.cmake"
  "/root/repo/build_base/src/topo/CMakeFiles/wormhole_topo.dir/DependInfo.cmake"
  "/root/repo/build_base/src/netbase/CMakeFiles/wormhole_netbase.dir/DependInfo.cmake"
  "/root/repo/build_base/src/exec/CMakeFiles/wormhole_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
