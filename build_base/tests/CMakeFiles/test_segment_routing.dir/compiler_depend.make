# Empty compiler generated dependencies file for test_segment_routing.
# This may be replaced when dependencies are built.
