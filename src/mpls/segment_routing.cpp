#include "mpls/segment_routing.h"

#include <stdexcept>

namespace wormhole::mpls {

void SrDatabase::EnableAs(const topo::Topology& topology,
                          topo::AsNumber asn) {
  for (const topo::RouterId rid : topology.as(asn).routers) {
    enabled_[rid] = true;
  }
}

void SrDatabase::AddPolicy(const topo::Topology& topology,
                           const SrPolicy& policy) {
  if (policy.waypoints.empty()) {
    throw std::invalid_argument("SR policy needs at least one waypoint");
  }
  if (!Enabled(policy.ingress)) {
    throw std::invalid_argument("SR policy ingress is not SR-enabled");
  }
  const topo::AsNumber asn = topology.router(policy.ingress).asn;
  for (const topo::RouterId waypoint : policy.waypoints) {
    if (!Enabled(waypoint) || topology.router(waypoint).asn != asn) {
      throw std::invalid_argument(
          "SR waypoint outside the ingress's SR domain");
    }
  }
  policies_[policy.ingress].push_back(policy);
}

std::optional<topo::RouterId> SrDatabase::RouterOfSid(
    std::uint32_t label) const {
  if (label < kSrgbBase) return std::nullopt;
  const topo::RouterId router = label - kSrgbBase;
  if (!enabled_.contains(router)) return std::nullopt;
  return router;
}

const SrPolicy* SrDatabase::PolicyFor(topo::RouterId router,
                                      netbase::Ipv4Address dst) const {
  const auto it = policies_.find(router);
  if (it == policies_.end()) return nullptr;
  const SrPolicy* best = nullptr;
  for (const SrPolicy& policy : it->second) {
    if (!policy.prefix.Contains(dst)) continue;
    if (best == nullptr || policy.prefix.length() > best->prefix.length()) {
      best = &policy;
    }
  }
  return best;
}

}  // namespace wormhole::mpls
