#include "gen/internet.h"

#include <algorithm>
#include <string>

namespace wormhole::gen {

namespace {

using netbase::Rng;
using topo::AsNumber;
using topo::RouterId;
using topo::Vendor;

constexpr AsNumber kTier1Base = 100;
constexpr AsNumber kTransitBase = 200;
constexpr AsNumber kStubBase = 1000;

int Jitter(int base, Rng& rng) {
  const int spread = std::max(1, base / 4);
  return std::max(1, base + rng.UniformInt(-spread, spread));
}

Vendor DrawVendor(HardwareProfile profile, bool is_core, Rng& rng) {
  switch (profile) {
    case HardwareProfile::kCisco:
      return rng.Chance(0.2) ? Vendor::kCiscoIosXr : Vendor::kCiscoIos;
    case HardwareProfile::kJuniper:
      return Vendor::kJuniperJunos;
    case HardwareProfile::kMixed:
      // The paper's AS3549 pattern: Juniper at the edge, <64,64> cores.
      if (is_core) return Vendor::kBrocade;
      return rng.Chance(0.7) ? Vendor::kJuniperJunos : Vendor::kCiscoIos;
    case HardwareProfile::kOther:
      return rng.Chance(0.5) ? Vendor::kJuniperJunosE : Vendor::kBrocade;
  }
  return Vendor::kCiscoIos;
}

}  // namespace

const char* ToString(AsRole role) {
  switch (role) {
    case AsRole::kTier1: return "tier-1";
    case AsRole::kTransit: return "transit";
    case AsRole::kStub: return "stub";
  }
  return "?";
}

const char* ToString(HardwareProfile profile) {
  switch (profile) {
    case HardwareProfile::kCisco: return "Cisco";
    case HardwareProfile::kJuniper: return "Juniper";
    case HardwareProfile::kMixed: return "mixed";
    case HardwareProfile::kOther: return "other";
  }
  return "?";
}

SyntheticInternet::SyntheticInternet(const InternetOptions& options)
    : configs_(topology_), convergence_jobs_(options.convergence_jobs) {
  Rng rng(options.seed);
  BuildAsLevel(options, rng);
  Reconverge();
}

void SyntheticInternet::BuildRouterLevel(AsProfile& profile, int router_count,
                                         Rng& rng) {
  const AsNumber asn = profile.asn;
  const std::string prefix = "AS" + std::to_string(asn) + "_";

  if (profile.role == AsRole::kStub) {
    // A handful of routers in a chain, possibly closed into a cycle.
    std::vector<RouterId> routers;
    for (int i = 0; i < router_count; ++i) {
      routers.push_back(topology_.AddRouter(
          asn, prefix + "r" + std::to_string(i),
          rng.Chance(0.7) ? Vendor::kCiscoIos : Vendor::kLinux));
    }
    for (std::size_t i = 0; i + 1 < routers.size(); ++i) {
      topology_.AddLink(routers[i], routers[i + 1],
                        {.delay_ms = rng.UniformReal(0.5, 2.0)});
    }
    if (routers.size() > 2 && rng.Chance(0.4)) {
      topology_.AddLink(routers.front(), routers.back(),
                        {.delay_ms = rng.UniformReal(0.5, 2.0)});
    }
    profile.edge_routers = routers;
    return;
  }

  // PoP structure: one core router per PoP, edges attached to their core.
  // Uniform ring metrics keep equal-cost paths hop-balanced (like real
  // ISP metric plans); a deep ring yields multi-LSR tunnel interiors.
  const int pops = std::max(3, router_count / 5);
  for (int p = 0; p < pops; ++p) {
    profile.core_routers.push_back(topology_.AddRouter(
        asn, prefix + "core" + std::to_string(p),
        DrawVendor(profile.hardware, /*is_core=*/true, rng)));
  }
  // Core ring (metro/long-haul delays) ...
  for (int p = 0; p < pops; ++p) {
    topology_.AddLink(profile.core_routers[p],
                      profile.core_routers[(p + 1) % pops],
                      {.igp_metric = 1,
                       .delay_ms = rng.UniformReal(2.0, 15.0)});
  }
  // ... plus a few long chords that shorten far pairs without creating
  // unequal-hop equal-cost ties on short ones.
  for (int c = 0; c < pops / 3; ++c) {
    const int a = rng.UniformInt(0, pops - 1);
    const int b = rng.UniformInt(0, pops - 1);
    const int ring_gap = std::min(std::abs(a - b),
                                  pops - std::abs(a - b));
    if (ring_gap < 4) continue;
    topology_.AddLink(profile.core_routers[a], profile.core_routers[b],
                      {.igp_metric = 2,
                       .delay_ms = rng.UniformReal(4.0, 20.0)});
  }
  // Edge PEs round-robin across PoPs.
  const int edge_count = std::max(2, router_count - pops);
  for (int e = 0; e < edge_count; ++e) {
    const RouterId pe = topology_.AddRouter(
        asn, prefix + "pe" + std::to_string(e),
        DrawVendor(profile.hardware, /*is_core=*/false, rng));
    profile.edge_routers.push_back(pe);
    const RouterId home_core = profile.core_routers[e % pops];
    topology_.AddLink(pe, home_core,
                      {.delay_ms = rng.UniformReal(0.5, 2.0)});
    if (rng.Chance(0.3) && pops > 1) {
      // Dual-homed PE: a second core uplink (creates ECMP).
      const RouterId other =
          profile.core_routers[(e + 1 + rng.UniformInt(0, pops - 2)) % pops];
      if (other != home_core) {
        topology_.AddLink(pe, other,
                          {.delay_ms = rng.UniformReal(0.5, 2.0)});
      }
    }
  }
}

void SyntheticInternet::BuildAsLevel(const InternetOptions& options,
                                     Rng& rng) {
  const auto draw_hardware = [&]() {
    const std::vector<double> weights{
        options.cisco_weight, options.juniper_weight, options.mixed_weight,
        options.other_weight};
    return static_cast<HardwareProfile>(rng.WeightedIndex(weights));
  };

  const auto make_as = [&](AsNumber asn, AsRole role, int routers,
                           int block_bits = 16) {
    topology_.AddAs(asn, std::string(ToString(role)) + "-" +
                             std::to_string(asn), block_bits);
    AsProfile profile;
    profile.asn = asn;
    profile.role = role;
    profile.hardware = draw_hardware();
    BuildRouterLevel(profile, routers, rng);
    if (role != AsRole::kStub && rng.Chance(options.mpls_probability)) {
      profile.mpls = true;
      profile.ttl_propagate =
          !rng.Chance(options.no_ttl_propagate_probability);
      profile.popping = rng.Chance(options.uhp_probability)
                            ? mpls::Popping::kUhp
                            : mpls::Popping::kPhp;
      mpls::MplsConfigMap::AsOptions as_options;
      as_options.ttl_propagate = profile.ttl_propagate;
      as_options.popping = profile.popping;
      configs_.EnableAs(asn, as_options);
    }
    // Failure injection: anonymous routers and ICMP rate limiting.
    for (const topo::RouterId rid : topology_.as(asn).routers) {
      if (options.anonymous_router_probability > 0.0 &&
          rng.Chance(options.anonymous_router_probability)) {
        configs_.Mutable(rid).icmp_silent = true;
      }
      if (options.icmp_loss > 0.0) {
        configs_.Mutable(rid).icmp_loss = options.icmp_loss;
      }
    }
    profiles_.emplace(asn, std::move(profile));
    return asn;
  };

  const auto random_edge = [&](AsNumber asn) {
    const auto& edges = profiles_.at(asn).edge_routers;
    return edges[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(edges.size()) - 1))];
  };
  const auto peer = [&](AsNumber a, AsNumber b) {
    topology_.AddLink(random_edge(a), random_edge(b),
                      {.delay_ms = rng.UniformReal(3.0, 15.0)});
  };

  const auto place_vps = [&](const std::vector<AsNumber>& stubs) {
    // Vantage points: hosts in distinct stub ASes spread over the draw
    // order.
    std::vector<AsNumber> vp_stubs = stubs;
    std::shuffle(vp_stubs.begin(), vp_stubs.end(), rng.engine());
    const int vps = std::min<int>(options.vp_count,
                                  static_cast<int>(vp_stubs.size()));
    for (int i = 0; i < vps; ++i) {
      const auto& routers =
          profiles_.at(vp_stubs[static_cast<std::size_t>(i)]).edge_routers;
      vantage_points_.push_back(topology_.AttachHost(
          routers.front(), "VP" + std::to_string(i)));
    }
  };

  if (options.hierarchical) {
    // ---- plan phase -----------------------------------------------------
    // Draw every stub's primary (address) provider before creating any AS,
    // so each transit's customers can be carved contiguously inside its
    // announced aggregate — the invariant hierarchical BGP relies on.
    const int transit_count = std::max(1, options.transit_count);
    const AsNumber stub_base = std::max<AsNumber>(
        kStubBase, kTransitBase + static_cast<AsNumber>(transit_count) + 8);
    std::vector<std::vector<AsNumber>> customers(
        static_cast<std::size_t>(transit_count));
    for (int i = 0; i < options.stub_count; ++i) {
      customers[static_cast<std::size_t>(
                    rng.UniformInt(0, transit_count - 1))]
          .push_back(stub_base + static_cast<AsNumber>(i));
    }

    // Smallest block (at most a /24) covering a stub's loopbacks, chain
    // /31s and a possible VP stub, with headroom for the +25% jitter.
    int stub_bits = 24;
    const std::uint32_t stub_need =
        static_cast<std::uint32_t>(options.stub_routers) * 8u + 16u;
    while (stub_bits > 8 &&
           (std::uint32_t{1} << (32 - stub_bits)) < stub_need) {
      --stub_bits;
    }

    // Pre-size the flat containers once (±25% jitter headroom) so a
    // 100k-router build never reallocates mid-construction.
    const auto expected = [](int count, int per) {
      return static_cast<std::size_t>(count) *
             (static_cast<std::size_t>(per) + static_cast<std::size_t>(per) /
                                                  4 +
              1);
    };
    const std::size_t routers_est =
        expected(options.tier1_count, options.tier1_routers) +
        expected(transit_count, options.transit_routers) +
        expected(options.stub_count, options.stub_routers);
    const std::size_t links_est =
        routers_est * 2 + static_cast<std::size_t>(options.stub_count) * 2;
    topology_.Reserve(routers_est, routers_est + 2 * links_est + 16,
                      links_est,
                      static_cast<std::size_t>(options.vp_count));

    // ---- build phase ----------------------------------------------------
    std::vector<AsNumber> tier1s;
    for (int i = 0; i < options.tier1_count; ++i) {
      tier1s.push_back(make_as(kTier1Base + static_cast<AsNumber>(i),
                               AsRole::kTier1,
                               Jitter(options.tier1_routers, rng)));
    }
    std::vector<AsNumber> transits;
    std::vector<AsNumber> stubs;
    for (int i = 0; i < transit_count; ++i) {
      const AsNumber t = kTransitBase + static_cast<AsNumber>(i);
      const auto& kids = customers[static_cast<std::size_t>(i)];
      // Aggregate sized to cover the transit's own /16 plus all of its
      // customers' blocks; BeginAggregate aligns the cursor, the AddAs
      // calls below then carve from inside the covering prefix.
      const std::uint64_t need =
          (std::uint64_t{1} << 16) +
          static_cast<std::uint64_t>(kids.size())
              * (std::uint64_t{1} << (32 - stub_bits));
      int agg_bits = 16;
      while (agg_bits > 2 &&
             (std::uint64_t{1} << (32 - agg_bits)) < need) {
        --agg_bits;
      }
      bgp_policy_.aggregates[t] = topology_.BeginAggregate(agg_bits);
      transits.push_back(make_as(t, AsRole::kTransit,
                                 Jitter(options.transit_routers, rng)));
      for (const AsNumber s : kids) {
        stubs.push_back(make_as(s, AsRole::kStub,
                                Jitter(options.stub_routers, rng),
                                stub_bits));
        bgp_policy_.stub_ases.insert(s);
      }
    }
    bgp_policy_.hierarchical = true;

    // ---- AS-level links -------------------------------------------------
    // Same shapes as the flat mode: Tier-1 mesh with parallel links,
    // dual-homed transits, occasional lateral transit peering.
    for (std::size_t i = 0; i < tier1s.size(); ++i) {
      for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
        peer(tier1s[i], tier1s[j]);
        peer(tier1s[i], tier1s[j]);
      }
    }
    for (int i = 0; i < transit_count; ++i) {
      const AsNumber t = transits[static_cast<std::size_t>(i)];
      const int up1 =
          rng.UniformInt(0, static_cast<int>(tier1s.size()) - 1);
      int up2 = rng.UniformInt(0, static_cast<int>(tier1s.size()) - 1);
      if (up2 == up1) up2 = (up2 + 1) % static_cast<int>(tier1s.size());
      peer(t, tier1s[static_cast<std::size_t>(up1)]);
      peer(t, tier1s[static_cast<std::size_t>(up2)]);
      if (rng.Chance(0.35) && transits.size() > 1) {
        AsNumber other = t;
        while (other == t) {
          other = transits[static_cast<std::size_t>(
              rng.UniformInt(0, static_cast<int>(transits.size()) - 1))];
        }
        peer(t, other);
      }
      // Customers link to their address provider; a dual-homed stub gets
      // a second transit for inbound diversity (outbound still follows
      // the single default toward the lowest-ASN provider peer).
      for (const AsNumber s : customers[static_cast<std::size_t>(i)]) {
        peer(s, t);
        if (rng.Chance(0.2) && transits.size() > 1) {
          AsNumber p2 = t;
          while (p2 == t) {
            p2 = transits[static_cast<std::size_t>(
                rng.UniformInt(0, static_cast<int>(transits.size()) - 1))];
          }
          peer(s, p2);
        }
      }
    }

    place_vps(stubs);
    return;
  }

  std::vector<AsNumber> tier1s;
  for (int i = 0; i < options.tier1_count; ++i) {
    tier1s.push_back(make_as(kTier1Base + i, AsRole::kTier1,
                             Jitter(options.tier1_routers, rng)));
  }
  std::vector<AsNumber> transits;
  for (int i = 0; i < options.transit_count; ++i) {
    transits.push_back(make_as(kTransitBase + i, AsRole::kTransit,
                               Jitter(options.transit_routers, rng)));
  }
  std::vector<AsNumber> stubs;
  for (int i = 0; i < options.stub_count; ++i) {
    stubs.push_back(make_as(kStubBase + i, AsRole::kStub,
                            Jitter(options.stub_routers, rng)));
    bgp_policy_.stub_ases.insert(stubs.back());
  }

  // Tier-1 full mesh with parallel links at distinct PEs.
  for (std::size_t i = 0; i < tier1s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
      peer(tier1s[i], tier1s[j]);
      peer(tier1s[i], tier1s[j]);
    }
  }
  // Transits: two Tier-1 uplinks (distinct), occasional lateral peering.
  for (const AsNumber t : transits) {
    const int up1 = rng.UniformInt(0, static_cast<int>(tier1s.size()) - 1);
    int up2 = rng.UniformInt(0, static_cast<int>(tier1s.size()) - 1);
    if (up2 == up1) up2 = (up2 + 1) % static_cast<int>(tier1s.size());
    peer(t, tier1s[static_cast<std::size_t>(up1)]);
    peer(t, tier1s[static_cast<std::size_t>(up1)]);  // parallel uplink
    peer(t, tier1s[static_cast<std::size_t>(up2)]);
    if (rng.Chance(0.35) && transits.size() > 1) {
      AsNumber other = t;
      while (other == t) {
        other = transits[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<int>(transits.size()) - 1))];
      }
      peer(t, other);
    }
  }
  // Stubs: one or two providers, mostly transits.
  for (const AsNumber s : stubs) {
    const auto provider = [&]() {
      if (rng.Chance(0.8)) {
        return transits[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<int>(transits.size()) - 1))];
      }
      return tier1s[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(tier1s.size()) - 1))];
    };
    const AsNumber p1 = provider();
    peer(s, p1);
    if (rng.Chance(0.4)) {
      const AsNumber p2 = provider();
      if (p2 != p1) peer(s, p2);
    }
  }

  place_vps(stubs);
}

void SyntheticInternet::Reconverge() {
  network_ = std::make_unique<sim::Network>(
      topology_, configs_, bgp_policy_, sim::EngineOptions{}, nullptr,
      nullptr, convergence_jobs_);
}

std::vector<netbase::Ipv4Address> SyntheticInternet::AllLoopbacks() const {
  std::vector<netbase::Ipv4Address> out;
  out.reserve(topology_.router_count());
  for (const topo::Router& router : topology_.routers()) {
    out.push_back(router.loopback);
  }
  return out;
}

void SyntheticInternet::ForceTtlPropagation(bool propagate_everywhere) {
  for (const auto& [asn, profile] : profiles_) {
    if (!profile.mpls) continue;
    for (const RouterId rid : topology_.as(asn).routers) {
      configs_.Mutable(rid).ttl_propagate =
          propagate_everywhere ? true : profile.ttl_propagate;
    }
  }
  Reconverge();
}

}  // namespace wormhole::gen
