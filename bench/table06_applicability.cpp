// Table 6: applicability of the four measurement techniques per router
// brand / LDP policy / popping mode — each cell verified by actually
// running the technique on the testbed.
#include <iostream>

#include "analysis/report.h"
#include "bench/common.h"
#include "gen/gns3.h"
#include "probe/prober.h"
#include "reveal/frpla.h"
#include "reveal/revelator.h"
#include "reveal/rtla.h"

namespace {

using namespace wormhole;

struct Applicability {
  bool frpla = false;
  bool rtla = false;
  bool dpr = false;
  bool brpr = false;
};

Applicability Probe(topo::Vendor vendor, mpls::LdpPolicy ldp,
                    mpls::Popping popping) {
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kDefault, .as2_vendor = vendor});
  mpls::MplsConfigMap::AsOptions options;
  options.ttl_propagate = false;  // invisible tunnels: the paper's setting
  options.ldp_policy = ldp;
  options.popping = popping;
  testbed.configs().EnableAs(2, options);
  testbed.Reconverge();

  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const auto trace = prober.Traceroute(testbed.Address("CE2.left"));

  Applicability a;
  const probe::Hop* egress = nullptr;
  for (const auto& hop : trace.hops) {
    if (hop.address &&
        hop.reply_kind == netbase::PacketKind::kTimeExceeded &&
        testbed.topology().AsOfAddress(*hop.address) == 2) {
      egress = &hop;
    }
  }
  if (egress != nullptr) {
    const auto rfa = reveal::ObserveRfa(*egress);
    a.frpla = rfa && rfa->rfa() > 0;
    const auto ping = prober.Ping(*egress->address);
    if (ping.responded) {
      const auto rtla = reveal::ObserveRtla(
          *egress->address, egress->reply_ip_ttl, ping.reply_ip_ttl);
      a.rtla = rtla && rtla->return_tunnel_length() > 0;
    }
    // Revelation between the hop before the egress and the egress.
    const auto last3 = trace.LastResponders(3);
    if (last3.size() >= 3) {
      reveal::Revelator revelator(prober);
      const auto result = revelator.Reveal(last3[0], last3[1]);
      a.dpr = result.method == reveal::RevelationMethod::kDpr;
      a.brpr = result.method == reveal::RevelationMethod::kBrpr;
      if (result.method == reveal::RevelationMethod::kEither) {
        a.dpr = a.brpr = true;
      }
    }
  }
  return a;
}

const char* Mark(bool v) { return v ? "X" : "-"; }

}  // namespace

int main() {
  bench::PrintHeader("Technique applicability per brand/configuration",
                     "Table 6");
  analysis::TextTable table({"Brand", "LDP", "Popping", "FRPLA", "RTLA",
                             "DPR", "BRPR"});
  struct Row {
    topo::Vendor vendor;
    const char* brand;
    mpls::LdpPolicy ldp;
    const char* ldp_name;
    mpls::Popping popping;
    const char* pop_name;
  };
  const Row rows[] = {
      {topo::Vendor::kCiscoIos, "Cisco", mpls::LdpPolicy::kAllPrefixes,
       "all prefixes", mpls::Popping::kPhp, "PHP"},
      {topo::Vendor::kJuniperJunos, "Juniper",
       mpls::LdpPolicy::kLoopbacksOnly, "loopback", mpls::Popping::kPhp,
       "PHP"},
      {topo::Vendor::kCiscoIos, "Cisco", mpls::LdpPolicy::kLoopbacksOnly,
       "loopback", mpls::Popping::kPhp, "PHP"},
      {topo::Vendor::kJuniperJunos, "Juniper",
       mpls::LdpPolicy::kAllPrefixes, "all prefixes", mpls::Popping::kPhp,
       "PHP"},
      {topo::Vendor::kCiscoIos, "Cisco", mpls::LdpPolicy::kAllPrefixes,
       "all prefixes", mpls::Popping::kUhp, "UHP"},
  };
  for (const Row& row : rows) {
    const Applicability a = Probe(row.vendor, row.ldp, row.popping);
    table.AddRow({row.brand, row.ldp_name, row.pop_name, Mark(a.frpla),
                  Mark(a.rtla), Mark(a.dpr), Mark(a.brpr)});
  }
  std::cout << table.ToString();
  std::cout << "\npaper Table 6: Cisco/all-prefixes/PHP -> FRPLA + BRPR;"
               "\n  Juniper/loopback/PHP -> (FRPLA), RTLA, DPR, (BRPR);"
               "\n  UHP -> nothing applies (totally invisible).\n";
  return 0;
}
