// The full measurement campaign (paper Sec. 4): plain discovery traces →
// inferred dataset → HDN detection → targeted probing around HDNs →
// candidate Ingress/Egress extraction → revelation (DPR/BRPR) →
// fingerprinting + FRPLA + RTLA analyses.
#pragma once

#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "campaign/compact_trace.h"
#include "campaign/dataset.h"
#include "campaign/targets.h"
#include "campaign/trace_cache.h"
#include "exec/thread_pool.h"
#include "fingerprint/signature.h"
#include "netbase/stats.h"
#include "probe/prober.h"
#include "reveal/frpla.h"
#include "reveal/revelator.h"
#include "reveal/rtla.h"
#include "reveal/uhp_trigger.h"
#include "sim/engine.h"

namespace wormhole::campaign {

struct EndpointPair {
  netbase::Ipv4Address ingress;
  netbase::Ipv4Address egress;
  friend auto operator<=>(const EndpointPair&, const EndpointPair&) = default;
};

struct CampaignOptions {
  /// Degree threshold tagging High Degree Nodes (the paper uses 128 at
  /// Internet scale; scaled to our synthetic size).
  std::size_t hdn_threshold = 8;
  /// Probing options; the paper's scamper starts at TTL 2.
  probe::TraceOptions trace_options{.first_ttl = 2};
  /// Drive every trace (discovery, targeted and revelation) through the
  /// batched SendBatch stepper. Results are byte-identical to sequential
  /// stepping; this only trades memory locality for throughput. Overrides
  /// `trace_options.batched` at construction.
  bool batched_stepping = true;
  /// Require both candidate endpoints to be HDN nodes (paper Sec. 4); relax
  /// for small topologies.
  bool require_hdn_endpoints = true;
  /// Ping every new address for the echo-reply half of its signature.
  bool fingerprint = true;
  /// Split phase-one targets across VPs (the paper's five teams probed
  /// disjoint destination shards). Default off: every VP probes every
  /// HDN-area target, which maximises the number of (ingress, egress)
  /// views per suspicious AS — the discovery phase stays sharded either
  /// way.
  bool shard_targets = false;
  /// Worker threads probing vantage-point shards concurrently; 0 means
  /// hardware concurrency. The result is bit-identical for every value
  /// (see "Concurrency model" in docs/semantics.md).
  std::size_t jobs = 0;
  /// Streaming mode (docs/scaling.md). When > 0, every vantage point
  /// traces its targets in consecutive shards of this many targets; as a
  /// shard retires, its traces are compacted into a packed per-VP log
  /// (CompactTraceLog, ~8 B/hop) and the full TraceResults are freed —
  /// peak memory is bounded by shard size instead of target count. The
  /// sequential reduce then replays the logs in the same
  /// (vp, target-index) order buffered mode uses, so every stat,
  /// candidate, revelation and report byte is identical at any shard
  /// size and any jobs count. The only difference: CampaignResult::traces
  /// stays empty (that buffer is exactly the memory this mode exists to
  /// not spend); use CampaignResult::trace_count for accounting.
  /// 0 = buffered mode: retain every targeted TraceResult.
  std::size_t stream_shard_size = 0;
};

/// Everything the campaign measured. Figures/tables are derived from this.
struct CandidateRecord {
  EndpointPair pair;
  topo::AsNumber asn = 0;  ///< AS of the suspected tunnel
  int egress_forward_ttl = 0;   ///< probe TTL the egress answered at
  int egress_return_ttl = 0;    ///< raw time-exceeded reply TTL
  std::optional<int> egress_echo_ttl;  ///< raw echo-reply TTL (ping)
  bool revealed = false;
  int revealed_count = 0;
};

struct CampaignResult {
  /// Phase-one traces (the targeted ones used for analysis). Empty in
  /// streaming mode — see CampaignOptions::stream_shard_size.
  std::vector<probe::TraceResult> traces;
  /// Number of targeted traces (== traces.size() in buffered mode; the
  /// only trace statistic streaming mode retains).
  std::uint64_t trace_count = 0;
  /// Dataset inferred from ALL traces (discovery + targeted).
  topo::ItdkDataset inferred;
  TargetSets targets;
  std::map<EndpointPair, reveal::RevelationResult> revelations;
  std::vector<CandidateRecord> candidates;
  fingerprint::SignatureCollector signatures;
  reveal::FrplaAnalysis frpla;
  reveal::RtlaAnalysis rtla;
  /// Trace path lengths before (tunnels hidden) / after (revealed hops
  /// added back) — Fig. 11.
  netbase::IntDistribution path_length_invisible;
  netbase::IntDistribution path_length_visible;
  /// Duplicate-hop (UHP) suspicions per AS of the suspected ingress — the
  /// only signal a totally invisible cloud leaves behind.
  std::map<topo::AsNumber, std::size_t> uhp_suspicions;
  std::uint64_t probes_sent = 0;
  std::uint64_t revelation_traces = 0;
  /// Delta-run accounting (RunDelta only; zero otherwise): (vp, target)
  /// pairs considered across both probing phases, and how many of them
  /// were actually re-probed live (the rest were served from the cache).
  /// Not part of the report — the report stays byte-identical to a cold
  /// run by construction.
  std::uint64_t delta_pairs_total = 0;
  std::uint64_t delta_pairs_reprobed = 0;

  /// Successful revelations only.
  [[nodiscard]] std::size_t revealed_count() const;
  /// Forward-tunnel-length distribution per method (Fig. 5). Length is the
  /// hop count to the egress: revealed LSRs + 1.
  [[nodiscard]] netbase::IntDistribution TunnelLengths(
      reveal::RevelationMethod method) const;
  [[nodiscard]] netbase::IntDistribution AllTunnelLengths() const;
};

/// Runs the measurement pipeline, spreading the probing load over a
/// per-VP worker pool (options.jobs threads). Parallelism never changes
/// the result: probing is sharded per vantage point (each prober is
/// driven by exactly one task, so its probe-id sequence is fixed), and
/// everything order-dependent — dataset mutation, candidate analysis,
/// revelation dedup — happens in a sequential post-merge pass over the
/// traces in (vp, target-index) order.
class Campaign {
 public:
  /// One prober per vantage point is created on `engine`.
  Campaign(const sim::Engine& engine, std::vector<netbase::Ipv4Address> vps,
           CampaignOptions options = {});

  /// Runs the whole pipeline. `discovery_targets` seeds the plain campaign
  /// that builds the inferred dataset (typically every router loopback).
  CampaignResult Run(const std::vector<netbase::Ipv4Address>&
                         discovery_targets);

  /// Phase-zero only: the plain campaign + inferred dataset (Fig. 1).
  std::vector<probe::TraceResult> RunDiscovery(
      const std::vector<netbase::Ipv4Address>& targets);

  /// Cache-backed streaming run (docs/incremental.md). Byte-identical to
  /// a cold Run at any jobs/shard combination: every (vp, target) trace
  /// whose cache entry carries the current convergence epoch is spliced
  /// from the cache (with its probe-id consumption replayed), everything
  /// else — cache misses, fingerprint pings, revelations — runs live.
  /// The probers are reset first, so each RunDelta is id-for-id the
  /// campaign a fresh Campaign object would run. Typical cycle: cold
  /// RunDelta fills `cache`; after topology.SetLinkUp +
  /// Network::OnLinkStateChange, Invalidate the cache with the returned
  /// delta; RunDelta again re-probes only the dirty pairs.
  CampaignResult RunDelta(
      const std::vector<netbase::Ipv4Address>& discovery_targets,
      TraceCache& cache);

  /// The worker count actually in use (resolves jobs == 0).
  [[nodiscard]] std::size_t jobs() const { return pool_.size(); }

 private:
  /// Traceroutes every shard concurrently (shard i drives probers_[i]);
  /// returns the traces per VP, each inner vector in shard order.
  std::vector<std::vector<probe::TraceResult>> TraceShards(
      const std::vector<std::vector<netbase::Ipv4Address>>& shards);

  /// Streaming twin of TraceShards: each VP walks its target list in
  /// fixed-size shards (options_.stream_shard_size), compacting every
  /// retired shard into its packed log and freeing the full traces. The
  /// probe streams are identical to TraceShards', so the compact logs
  /// hold byte-identical observations.
  std::vector<CompactTraceLog> TraceShardsStreaming(
      const std::vector<std::vector<netbase::Ipv4Address>>& shards);

  /// Delta twin of TraceShardsStreaming: per (vp, target) either splices
  /// the cached packed trace (replaying its probe-id budget) or traces
  /// live and records the result. Target order — and therefore each
  /// prober's probe-id stream — is identical to TraceShardsStreaming's.
  /// `served` / `total` accumulate per-VP hit accounting.
  std::vector<CompactTraceLog> TraceShardsDelta(
      TraceCache::Phase phase,
      const std::vector<std::vector<netbase::Ipv4Address>>& shards,
      TraceCache& cache, std::uint64_t epoch, bool strict_offsets,
      std::vector<std::uint64_t>& served, std::vector<std::uint64_t>& total);

  /// The streaming (bounded-memory) twin of Run; same output bytes.
  CampaignResult RunStreaming(
      const std::vector<netbase::Ipv4Address>& discovery_targets);

  /// Shared body of RunStreaming (cache == nullptr) and RunDelta.
  CampaignResult StreamingCampaign(
      const std::vector<netbase::Ipv4Address>& discovery_targets,
      TraceCache* cache);

  /// Rebuilds every prober in place so probe ids restart at 1 — the
  /// precondition for a RunDelta to be id-for-id a cold campaign.
  void ResetProbers();

  /// Returns the candidate endpoint pair extracted from the trace, if any.
  /// `vp` is the prober's vantage-point index (CachedPing slot key).
  std::optional<EndpointPair> AnalyzeTrace(
      const probe::TraceResult& trace, CampaignResult& result, std::size_t vp,
      probe::Prober& prober,
      const std::unordered_set<topo::NodeId>& hdn_set);

  /// Reduce-time echo ping (fingerprint echo half, candidate egress
  /// probe). Outside a delta run this is exactly prober.Ping; inside one
  /// it consults the cache's per-VP ping table first, replaying the
  /// probe-id budget of a hit so the prober's id stream stays id-for-id
  /// the cold run's (docs/incremental.md).
  probe::PingResult CachedPing(std::size_t vp, probe::Prober& prober,
                               netbase::Ipv4Address address);

  /// The ingress/egress address sets of the revelation map — the FRPLA
  /// responder-role classifier's inputs, computed once after the reduce.
  struct FrplaSets {
    std::unordered_set<netbase::Ipv4Address> ingresses;
    std::unordered_set<netbase::Ipv4Address> egresses;
  };
  static FrplaSets FrplaSetsOf(const CampaignResult& result);
  /// Adds one trace's hop-level RFA samples (both Run flavours call this
  /// over the traces in the same (vp, target-index) order).
  static void FrplaFromTrace(const probe::TraceResult& trace,
                             const FrplaSets& sets, CampaignResult& result);
  void ClassifyFrpla(CampaignResult& result) const;
  static void RfaSampleFromCandidate(const CandidateRecord& record,
                                     CampaignResult& result);

  const sim::Engine* engine_;
  std::vector<probe::Prober> probers_;
  CampaignOptions options_;
  exec::ThreadPool pool_;
  /// Non-null only while StreamingCampaign runs with a cache: routes
  /// CachedPing through it. The reduce is sequential, so the ping table
  /// never sees concurrent access.
  TraceCache* delta_cache_ = nullptr;
  std::uint64_t delta_epoch_ = 0;
  bool delta_strict_ = false;
};

}  // namespace wormhole::campaign
