// The UHP duplicate-hop trigger: detection on synthetic traces, on the
// simulated data plane, and its absence in every non-UHP configuration.
#include <gtest/gtest.h>

#include "gen/gns3.h"
#include "mpls/config.h"
#include "probe/prober.h"
#include "reveal/uhp_trigger.h"
#include "sim/network.h"

namespace wormhole::reveal {
namespace {

using netbase::Ipv4Address;

probe::Hop MakeHop(int ttl, std::optional<Ipv4Address> address) {
  probe::Hop hop;
  hop.probe_ttl = ttl;
  hop.address = address;
  return hop;
}

TEST(UhpTrigger, DetectsConsecutiveDuplicates) {
  probe::TraceResult trace;
  const Ipv4Address a(5, 0, 0, 1), b(5, 0, 0, 2), c(5, 0, 0, 3);
  trace.hops = {MakeHop(1, a), MakeHop(2, b), MakeHop(3, b), MakeHop(4, c)};
  const auto suspicions = DetectUhpSuspicions(trace);
  ASSERT_EQ(suspicions.size(), 1u);
  EXPECT_EQ(suspicions[0].duplicate, b);
  EXPECT_EQ(suspicions[0].first_ttl, 2);
  ASSERT_TRUE(suspicions[0].before.has_value());
  EXPECT_EQ(*suspicions[0].before, a);
  EXPECT_TRUE(LooksLikeUhp(trace));
}

TEST(UhpTrigger, IgnoresNonAdjacentRepeatsAndTimeouts) {
  probe::TraceResult trace;
  const Ipv4Address a(5, 0, 0, 1), b(5, 0, 0, 2);
  // a ... b ... a again (a loop, not UHP), and b * b (timeout between).
  trace.hops = {MakeHop(1, a), MakeHop(2, b), MakeHop(3, a),
                MakeHop(4, b),  MakeHop(5, std::nullopt), MakeHop(6, b)};
  EXPECT_TRUE(DetectUhpSuspicions(trace).empty());
  EXPECT_FALSE(LooksLikeUhp(trace));
}

TEST(UhpTrigger, TripleAnswerYieldsTwoSuspicions) {
  probe::TraceResult trace;
  const Ipv4Address a(5, 0, 0, 1), b(5, 0, 0, 2);
  trace.hops = {MakeHop(1, a), MakeHop(2, b), MakeHop(3, b), MakeHop(4, b)};
  EXPECT_EQ(DetectUhpSuspicions(trace).size(), 2u);
}

// End-to-end: the simulated UHP cloud produces the signature; every other
// configuration does not.
TEST(UhpTrigger, FiresOnSimulatedUhpCloud) {
  topo::Topology topology;
  topology.AddAs(1, "src");
  topology.AddAs(2, "uhp");
  topology.AddAs(3, "dst");
  const auto gw = topology.AddRouter(1, "gw", topo::Vendor::kCiscoIos);
  const auto in = topology.AddRouter(2, "in", topo::Vendor::kCiscoIos);
  const auto m = topology.AddRouter(2, "m", topo::Vendor::kCiscoIos);
  const auto out = topology.AddRouter(2, "out", topo::Vendor::kCiscoIos);
  const auto d1 = topology.AddRouter(3, "d1", topo::Vendor::kCiscoIos);
  const auto d2 = topology.AddRouter(3, "d2", topo::Vendor::kCiscoIos);
  topology.AddLink(gw, in);
  topology.AddLink(in, m);
  topology.AddLink(m, out);
  topology.AddLink(out, d1);
  topology.AddLink(d1, d2);
  const auto vp = topology.AttachHost(gw, "VP");
  mpls::MplsConfigMap configs(topology);
  configs.EnableAs(2, {.ttl_propagate = false,
                       .popping = mpls::Popping::kUhp});
  sim::Network network(topology, configs,
                       routing::BgpPolicy{.stub_ases = {1, 3}});
  probe::Prober prober(network.engine(), vp);

  const auto trace = prober.Traceroute(topology.router(d2).loopback);
  const auto suspicions = DetectUhpSuspicions(trace);
  ASSERT_EQ(suspicions.size(), 1u);
  EXPECT_EQ(topology.FindRouterByAddress(suspicions[0].duplicate),
            std::optional<topo::RouterId>(d1));
  // The hop before the duplicate is the Ingress LER (the cloud hid
  // everything after it).
  ASSERT_TRUE(suspicions[0].before.has_value());
  EXPECT_EQ(topology.FindRouterByAddress(*suspicions[0].before),
            std::optional<topo::RouterId>(in));
}

class NonUhpScenarios
    : public ::testing::TestWithParam<gen::Gns3Scenario> {};

TEST_P(NonUhpScenarios, NeverFireTheUhpTrigger) {
  gen::Gns3Testbed testbed({.scenario = GetParam()});
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  for (const char* target : {"CE2.left", "PE2.left", "P2.left"}) {
    EXPECT_FALSE(
        LooksLikeUhp(prober.Traceroute(testbed.Address(target))))
        << target;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, NonUhpScenarios,
    ::testing::Values(gen::Gns3Scenario::kDefault,
                      gen::Gns3Scenario::kBackwardRecursive,
                      gen::Gns3Scenario::kExplicitRoute));

}  // namespace
}  // namespace wormhole::reveal
