#include "probe/prober.h"

#include <algorithm>
#include <stdexcept>

namespace wormhole::probe {

using netbase::Packet;
using netbase::PacketKind;

Prober::Prober(const sim::Engine& engine, netbase::Ipv4Address vantage_point)
    : engine_(&engine), source_(vantage_point) {
  if (engine.topology().FindHost(vantage_point) == nullptr) {
    throw std::invalid_argument("Prober: vantage point is not a host");
  }
}

TraceResult Prober::Traceroute(netbase::Ipv4Address target,
                               const TraceOptions& options) {
  if (options.batched) return TracerouteBatched(target, options);
  TraceResult result;
  result.source = source_;
  result.target = target;
  result.flow_id = options.flow_id;

  int consecutive_timeouts = 0;
  for (int ttl = options.first_ttl; ttl <= options.max_ttl; ++ttl) {
    sim::Engine::Outcome outcome;
    for (int attempt = 0; attempt < std::max(1, options.attempts);
         ++attempt) {
      Packet probe;
      probe.kind = PacketKind::kEchoRequest;
      probe.src = source_;
      probe.dst = target;
      probe.ip_ttl = ttl;
      probe.flow_id = options.flow_id;
      probe.probe_id = next_probe_id_++;
      ++probes_sent_;
      outcome = engine_->Send(std::move(probe));
      if (outcome.received) break;
    }

    Hop hop;
    hop.probe_ttl = ttl;
    if (outcome.received) {
      hop.address = outcome.reply.src;
      hop.reply_kind = outcome.reply.kind;
      hop.reply_ip_ttl = outcome.reply.ip_ttl;
      hop.labels = outcome.reply.quoted_labels;
      hop.rtt_ms = outcome.rtt_ms;
      consecutive_timeouts = 0;
    } else {
      ++consecutive_timeouts;
    }
    result.hops.push_back(std::move(hop));

    if (outcome.received) {
      if (outcome.reply.kind == PacketKind::kEchoReply) {
        result.reached = true;
        break;
      }
      if (outcome.reply.kind == PacketKind::kDestinationUnreachable) {
        result.unreachable = true;
        break;
      }
    }
    if (consecutive_timeouts >= options.gap_limit) break;
  }
  return result;
}

// Speculative batched tracer. The sequential tracer above is a state
// machine over (ttl, attempt) whose next probe depends on the previous
// outcome; to batch it we *predict* the common path — every probe is
// answered, so the trace is a plain TTL sweep — send the whole predicted
// window through one SendBatch, then replay the outcomes through the
// sequential state machine. The first outcome that falsifies the
// prediction (a timeout with retries left) or stops the trace discards
// the speculative tail: those probes were never "sent", so their ids,
// stats and probes_sent() accounting are dropped and the ids are reused
// by the next window. The observable stream — probe ids, outcomes, hop
// records, engine stats — is byte-identical to the sequential tracer.
TraceResult Prober::TracerouteBatched(netbase::Ipv4Address target,
                                      const TraceOptions& options) {
  TraceResult result;
  result.source = source_;
  result.target = target;
  result.flow_id = options.flow_id;

  const int attempts = std::max(1, options.attempts);
  int ttl = options.first_ttl;
  int attempt = 0;
  int consecutive_timeouts = 0;
  bool done = false;
  while (!done && ttl <= options.max_ttl) {
    // Slot 0 is the sequential machine's actual next probe (ttl,
    // attempt); slots k > 0 assume slot k-1 was answered and probe
    // ttl + k on its first attempt. An attempt number never reaches the
    // wire — retries differ from first attempts only by probe id, and
    // ids are assigned by consumed-slot order — so a packet built for
    // the wrong attempt number is still byte-correct.
    std::size_t window = static_cast<std::size_t>(options.max_ttl - ttl) + 1;
    if (options.batch_window > 0) {
      window =
          std::min(window, static_cast<std::size_t>(options.batch_window));
    } else {
      // Adaptive window: open with the previous trace's TTL count (paths
      // from one vantage point cluster tightly, so the hint usually lands
      // the stop inside the first window with no discarded tail), then
      // extend in short increments past the hint. The window never
      // changes the observable trace — a wrong hint costs speculative
      // work, not correctness.
      const int done = ttl - options.first_ttl;
      const int hinted = window_hint_ > 0 ? window_hint_ - done : 8;
      window = std::min(
          window, static_cast<std::size_t>(std::clamp(hinted, 4, 64)));
    }
    batch_probes_.clear();
    for (std::size_t k = 0; k < window; ++k) {
      Packet probe;
      probe.kind = PacketKind::kEchoRequest;
      probe.src = source_;
      probe.dst = target;
      probe.ip_ttl = ttl + static_cast<int>(k);
      probe.flow_id = options.flow_id;
      probe.probe_id = next_probe_id_ + static_cast<std::uint32_t>(k);
      batch_probes_.push_back(probe);
    }
    engine_->SendBatch(batch_probes_, batch_, {.commit_stats = false});

    // Replay: consume outcomes in slot order until a misprediction or a
    // stop, accumulating only consumed slots' stats for one commit.
    sim::EngineStats consumed_stats;
    std::size_t used = 0;
    bool diverged = false;
    for (std::size_t k = 0; k < window; ++k) {
      const sim::Engine::Outcome& outcome = batch_.outcomes[k];
      const int cur_ttl = ttl + static_cast<int>(k);
      const int cur_attempt = k == 0 ? attempt : 0;
      consumed_stats += batch_.per_slot_stats[k];
      ++used;
      if (!outcome.received && cur_attempt + 1 < attempts) {
        ttl = cur_ttl;
        attempt = cur_attempt + 1;
        diverged = true;
        break;
      }

      Hop hop;
      hop.probe_ttl = cur_ttl;
      if (outcome.received) {
        hop.address = outcome.reply.src;
        hop.reply_kind = outcome.reply.kind;
        hop.reply_ip_ttl = outcome.reply.ip_ttl;
        hop.labels = outcome.reply.quoted_labels;
        hop.rtt_ms = outcome.rtt_ms;
        consecutive_timeouts = 0;
      } else {
        ++consecutive_timeouts;
      }
      result.hops.push_back(std::move(hop));

      if (outcome.received) {
        if (outcome.reply.kind == PacketKind::kEchoReply) {
          result.reached = true;
          done = true;
          break;
        }
        if (outcome.reply.kind == PacketKind::kDestinationUnreachable) {
          result.unreachable = true;
          done = true;
          break;
        }
      }
      if (consecutive_timeouts >= options.gap_limit) {
        done = true;
        break;
      }
    }
    next_probe_id_ += static_cast<std::uint32_t>(used);
    probes_sent_ += used;
    engine_->CommitStats(consumed_stats);
    if (!diverged && !done) {
      // The whole window was consumed without a stop: continue the sweep
      // past it (only possible when a cap or the adaptive hint shortened
      // the window below the remaining TTL range).
      ttl += static_cast<int>(window);
      attempt = 0;
    }
  }
  window_hint_ = static_cast<int>(result.hops.size());
  return result;
}

PingResult Prober::Ping(netbase::Ipv4Address target, std::uint16_t flow_id) {
  Packet probe;
  probe.kind = PacketKind::kEchoRequest;
  probe.src = source_;
  probe.dst = target;
  probe.ip_ttl = 64;  // plenty; ping is not a TTL-limited probe
  probe.flow_id = flow_id;
  probe.probe_id = next_probe_id_++;
  ++probes_sent_;

  const sim::Engine::Outcome outcome = engine_->Send(std::move(probe));
  PingResult result;
  result.target = target;
  if (outcome.received &&
      outcome.reply.kind == PacketKind::kEchoReply) {
    result.responded = true;
    result.reply_ip_ttl = outcome.reply.ip_ttl;
    result.rtt_ms = outcome.rtt_ms;
  }
  return result;
}

}  // namespace wormhole::probe
