#!/usr/bin/env python3
"""Compare two google-benchmark JSON snapshots and fail on regressions.

Used by CI's bench-smoke job: the checked-in baseline (BENCH_seed.json)
is diffed against the fresh run; any benchmark whose throughput counter
(`probes/s`, `packets/s`, ...) drops — or, for counter-less benchmarks,
whose per-iteration real_time rises — by more than the threshold fails
the job. Benchmarks present on only one side are reported but never
fatal, so adding or retiring a benchmark does not need a baseline dance
in the same PR.

Exit status: 0 = within threshold, 1 = regression, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Counters whose value is a rate (bigger is better). Everything else on a
# benchmark entry is metadata (routes, batch size, ...), not a metric.
RATE_COUNTERS = ("probes/s", "packets/s", "traces/s", "lookups/s")

# Counters whose value is a footprint (smaller is better). Diffed
# alongside the speed metric when both sides report them, and the targets
# of --ceiling checks. peak_rss_mb is monotone over the process lifetime,
# so ceilings should run against a --benchmark_filter'ed single-row
# snapshot (the CI bench-smoke job does).
SIZE_COUNTERS = ("peak_rss_mb",)


def parse_ceiling(spec: str) -> tuple[str, float]:
    name, sep, value = spec.partition("=")
    if not sep or not name:
        print(f"error: --ceiling wants NAME=VALUE, got {spec!r}",
              file=sys.stderr)
        sys.exit(2)
    try:
        return name, float(value)
    except ValueError:
        print(f"error: --ceiling value {value!r} is not a number",
              file=sys.stderr)
        sys.exit(2)


def load_benchmarks(path: Path) -> dict[str, dict]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    out: dict[str, dict] = {}
    for bench in data.get("benchmarks", []):
        # Keep only primary results (aggregates like _mean would double
        # count; the smoke run uses repetitions=1 anyway).
        if bench.get("run_type", "iteration") == "aggregate":
            continue
        out[bench["name"]] = bench
    return out


def metric_of(bench: dict) -> tuple[str, float, bool]:
    """Returns (metric name, value, bigger_is_better)."""
    for counter in RATE_COUNTERS:
        if counter in bench:
            return counter, float(bench[counter]), True
    return "real_time", float(bench["real_time"]), False


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("candidate", type=Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional regression that fails (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--ceiling",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="fail if any candidate benchmark's NAME counter exceeds "
             "VALUE (repeatable; e.g. --ceiling peak_rss_mb=512). "
             "Checked against the candidate alone, so new benchmarks "
             "without a baseline are still gated.",
    )
    args = parser.parse_args()
    if not 0 < args.threshold < 1:
        print("error: --threshold must be in (0, 1)", file=sys.stderr)
        return 2

    base = load_benchmarks(args.baseline)
    cand = load_benchmarks(args.candidate)

    regressions: list[str] = []
    for name in sorted(base):
        if name not in cand:
            print(f"  (only in baseline: {name})")
            continue
        base_metric, base_value, bigger_better = metric_of(base[name])
        cand_metric, cand_value, _ = metric_of(cand[name])
        if base_metric != cand_metric or base_value <= 0:
            print(f"  (metric changed for {name}: {base_metric} -> "
                  f"{cand_metric}; skipping)")
            continue
        if bigger_better:
            change = cand_value / base_value - 1.0
        else:
            change = base_value / cand_value - 1.0
        marker = "ok"
        if change < -args.threshold:
            marker = "REGRESSION"
            regressions.append(name)
        print(f"  {name}: {base_metric} {base_value:.4g} -> "
              f"{cand_value:.4g} ({change:+.1%}) {marker}")
        # Footprint counters ride along as a second metric: growth past
        # the threshold is as much a regression as lost throughput.
        for counter in SIZE_COUNTERS:
            if counter not in base[name] or counter not in cand[name]:
                continue
            base_size = float(base[name][counter])
            cand_size = float(cand[name][counter])
            if base_size <= 0:
                continue
            growth = cand_size / base_size - 1.0
            marker = "ok"
            if growth > args.threshold:
                marker = "REGRESSION"
                regressions.append(f"{name}[{counter}]")
            print(f"  {name}: {counter} {base_size:.4g} -> "
                  f"{cand_size:.4g} ({growth:+.1%}) {marker}")
    for name in sorted(set(cand) - set(base)):
        print(f"  (new benchmark, no baseline: {name})")

    ceilings = [parse_ceiling(spec) for spec in args.ceiling]
    for counter, limit in ceilings:
        checked = 0
        for name in sorted(cand):
            if counter not in cand[name]:
                continue
            checked += 1
            value = float(cand[name][counter])
            marker = "ok"
            if value > limit:
                marker = "OVER CEILING"
                regressions.append(f"{name}[{counter}>{limit:g}]")
            print(f"  {name}: {counter} {value:.4g} "
                  f"(ceiling {limit:g}) {marker}")
        if checked == 0:
            print(f"  (ceiling {counter}={limit:g}: no candidate "
                  f"benchmark reports that counter)", file=sys.stderr)
            regressions.append(f"[{counter} missing]")

    if regressions:
        print(
            f"bench-diff: {len(regressions)} benchmark(s) regressed more "
            f"than {args.threshold:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"bench-diff: {len(base)} baseline benchmark(s) within "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
