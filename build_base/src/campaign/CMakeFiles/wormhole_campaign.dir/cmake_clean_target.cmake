file(REMOVE_RECURSE
  "libwormhole_campaign.a"
)
