// Hardened runtime contracts.
//
// The fast-path rewrite (sealed FIB index, inline label stacks, per-router
// caches) made several invariants implicit: the sealed index is only read
// after its publication store, InlineVec indices stay in bounds, TTLs stay
// in [0, 255], and `ldp_ops` is only indexed with in-range unreserved
// labels. The golden-campaign test samples those invariants; this layer
// machine-enforces them when the build opts in.
//
// Two macros, by intended cost:
//
//  * WORMHOLE_ASSERT(cond, msg) — cheap checks that may live on the per-hop
//    path. Compiled in iff the WORMHOLE_HARDENED CMake option is ON
//    (regardless of NDEBUG); otherwise the condition is not evaluated.
//  * WORMHOLE_DCHECK(cond, msg) — potentially hot or redundant checks.
//    Under WORMHOLE_HARDENED they behave like WORMHOLE_ASSERT; otherwise
//    they fall back to plain assert(), so unhardened Debug builds keep
//    exactly the coverage they had before this header existed.
//
// Failures print `file:line: check failed: <cond> — <msg>` to stderr and
// abort, which every sanitizer job reports with a stack. Checks must never
// have side effects: hardened and plain builds must produce byte-identical
// campaign output (tests/test_golden_campaign.cpp holds under both).
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace wormhole::netbase::internal {

[[noreturn]] inline void ContractFailure(const char* file, long line,
                                         const char* condition,
                                         const char* message) {
  std::fprintf(stderr, "%s:%ld: check failed: %s — %s\n", file, line,
               condition, message);
  std::abort();
}

}  // namespace wormhole::netbase::internal

#if defined(WORMHOLE_HARDENED)

#define WORMHOLE_ASSERT(cond, msg)                                  \
  (static_cast<bool>(cond)                                          \
       ? static_cast<void>(0)                                       \
       : ::wormhole::netbase::internal::ContractFailure(            \
             __FILE__, __LINE__, #cond, msg))
#define WORMHOLE_DCHECK(cond, msg) WORMHOLE_ASSERT(cond, msg)

#else

// Not evaluated, but still parsed: variables used only in checks stay
// "used" for -Werror, and bit-rot in the condition is a compile error.
#define WORMHOLE_ASSERT(cond, msg) \
  static_cast<void>(sizeof(static_cast<bool>(cond)))

#if defined(NDEBUG)
// assert() would discard `cond` entirely here; keep it parsed instead so
// check-only variables do not become -Wunused under -Werror.
#define WORMHOLE_DCHECK(cond, msg) \
  static_cast<void>(sizeof(static_cast<bool>(cond)))
#else
#define WORMHOLE_DCHECK(cond, msg) assert((cond) && (msg))
#endif

#endif
