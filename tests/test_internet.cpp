// Invariants of the synthetic Internet generator.
#include <gtest/gtest.h>

#include "gen/internet.h"
#include "probe/prober.h"
#include "routing/igp.h"

namespace wormhole::gen {
namespace {

class InternetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { net_ = new SyntheticInternet({.seed = 7}); }
  static void TearDownTestSuite() {
    delete net_;
    net_ = nullptr;
  }
  static SyntheticInternet* net_;
};

SyntheticInternet* InternetTest::net_ = nullptr;

TEST_F(InternetTest, HasRequestedAsCounts) {
  const InternetOptions defaults;
  int tier1 = 0, transit = 0, stub = 0;
  for (const auto& [asn, profile] : net_->profiles()) {
    switch (profile.role) {
      case AsRole::kTier1: ++tier1; break;
      case AsRole::kTransit: ++transit; break;
      case AsRole::kStub: ++stub; break;
    }
  }
  EXPECT_EQ(tier1, defaults.tier1_count);
  EXPECT_EQ(transit, defaults.transit_count);
  EXPECT_EQ(stub, defaults.stub_count);
}

TEST_F(InternetTest, StubsNeverRunMpls) {
  for (const auto& [asn, profile] : net_->profiles()) {
    if (profile.role == AsRole::kStub) {
      EXPECT_FALSE(profile.mpls) << "AS" << asn;
      for (const topo::RouterId rid : net_->topology().as(asn).routers) {
        EXPECT_FALSE(net_->configs().For(rid).enabled);
      }
    }
  }
}

TEST_F(InternetTest, ProfilesMatchInstalledConfigs) {
  for (const auto& [asn, profile] : net_->profiles()) {
    for (const topo::RouterId rid : net_->topology().as(asn).routers) {
      const auto& config = net_->configs().For(rid);
      EXPECT_EQ(config.enabled, profile.mpls);
      if (profile.mpls) {
        EXPECT_EQ(config.ttl_propagate, profile.ttl_propagate);
        EXPECT_EQ(config.popping, profile.popping);
      }
    }
  }
}

TEST_F(InternetTest, EveryAsInternallyConnected) {
  for (const auto& [asn, profile] : net_->profiles()) {
    const auto& routers = net_->topology().as(asn).routers;
    const auto spf = routing::ComputeSpf(net_->topology(), routers.front());
    for (const topo::RouterId rid : routers) {
      EXPECT_NE(spf.distance[rid], routing::kUnreachable)
          << "AS" << asn << " router " << rid;
    }
  }
}

TEST_F(InternetTest, VantagePointsLiveInDistinctStubAses) {
  const auto& vps = net_->vantage_points();
  EXPECT_EQ(vps.size(), 12u);
  std::set<topo::AsNumber> ases;
  for (const auto vp : vps) {
    const topo::Host* host = net_->topology().FindHost(vp);
    ASSERT_NE(host, nullptr);
    const topo::AsNumber asn =
        net_->topology().router(host->gateway).asn;
    EXPECT_EQ(net_->profile(asn).role, AsRole::kStub);
    EXPECT_TRUE(ases.insert(asn).second) << "duplicate VP AS " << asn;
  }
}

TEST_F(InternetTest, EveryLoopbackReachableFromEveryVp) {
  probe::Prober prober(net_->engine(), net_->vantage_points().front());
  int reached = 0, total = 0;
  for (const auto loopback : net_->AllLoopbacks()) {
    ++total;
    if (prober.Ping(loopback).responded) ++reached;
  }
  // Everything should answer (the only acceptable losses are <64,64>
  // responders too far away; the topology is small enough that there are
  // none).
  EXPECT_EQ(reached, total);
}

TEST_F(InternetTest, DeterministicForSameSeed) {
  SyntheticInternet a({.seed = 99, .transit_count = 3, .stub_count = 6});
  SyntheticInternet b({.seed = 99, .transit_count = 3, .stub_count = 6});
  EXPECT_EQ(a.topology().router_count(), b.topology().router_count());
  EXPECT_EQ(a.topology().link_count(), b.topology().link_count());
  for (std::size_t i = 0; i < a.topology().router_count(); ++i) {
    EXPECT_EQ(a.topology().routers()[i].loopback,
              b.topology().routers()[i].loopback);
    EXPECT_EQ(a.topology().routers()[i].vendor,
              b.topology().routers()[i].vendor);
  }
}

TEST_F(InternetTest, DifferentSeedsDiffer) {
  SyntheticInternet a({.seed = 1, .transit_count = 3, .stub_count = 6});
  SyntheticInternet b({.seed = 2, .transit_count = 3, .stub_count = 6});
  EXPECT_NE(a.topology().link_count(), b.topology().link_count());
}

TEST_F(InternetTest, ForceTtlPropagationMakesTunnelsExplicit) {
  SyntheticInternet net({.seed = 7, .transit_count = 4, .stub_count = 8});
  // Find an invisible transit AS (retry seeds would be overkill: with 7
  // ASes at the defaults there is essentially always one).
  bool found = false;
  for (const auto& [asn, profile] : net.profiles()) {
    if (profile.invisible_tunnels()) found = true;
  }
  ASSERT_TRUE(found);

  // Count labelled *hops* across all VPs (a trace often crosses several
  // MPLS clouds, so trace-level counting can stay flat).
  const auto labeled_hops = [&net]() {
    std::size_t count = 0;
    for (const auto vp : net.vantage_points()) {
      probe::Prober prober(net.engine(), vp);
      for (const auto loopback : net.AllLoopbacks()) {
        for (const auto& hop : prober.Traceroute(loopback).hops) {
          if (hop.has_labels()) ++count;
        }
      }
    }
    return count;
  };
  const std::size_t labels_before = labeled_hops();
  net.ForceTtlPropagation(true);
  const std::size_t labels_after = labeled_hops();
  EXPECT_GT(labels_after, labels_before);

  net.ForceTtlPropagation(false);
  EXPECT_EQ(labeled_hops(), labels_before);
}

// --- hierarchical (Internet-at-scale) mode ---------------------------------

TEST(HierarchicalInternetTest, ScaleWorldRoutesEndToEnd) {
  SyntheticInternet net({.seed = 11,
                         .tier1_count = 2,
                         .transit_count = 8,
                         .stub_count = 60,
                         .vp_count = 4,
                         .hierarchical = true});

  // Customer blocks really live inside their provider's announced
  // aggregate — the invariant the default+aggregate routing relies on.
  ASSERT_FALSE(net.bgp_policy().aggregates.empty());
  for (const auto& [asn, profile] : net.profiles()) {
    if (profile.role != AsRole::kStub) continue;
    bool covered = false;
    for (const auto& [transit, agg] : net.bgp_policy().aggregates) {
      if (agg.Contains(net.topology().as(asn).block)) covered = true;
    }
    EXPECT_TRUE(covered) << "stub AS " << asn << " outside every aggregate";
  }

  // Every loopback answers a VP ping: the forward path rides the stub
  // default + core aggregates, the reply rides a direct customer route.
  probe::Prober prober(net.engine(), net.vantage_points().front());
  int reached = 0, total = 0;
  for (const auto loopback : net.AllLoopbacks()) {
    ++total;
    if (prober.Ping(loopback).responded) ++reached;
  }
  EXPECT_EQ(reached, total);

  // FIB compactness: a stub router holds intra-AS routes plus one
  // default, not one route per AS.
  for (const auto& [asn, profile] : net.profiles()) {
    if (profile.role != AsRole::kStub) continue;
    for (const topo::RouterId rid : net.topology().as(asn).routers) {
      EXPECT_LT(net.network().fibs()[rid].size(), 64u);
    }
  }
}

TEST(HierarchicalInternetTest, DeterministicForSameSeed) {
  const InternetOptions options{.seed = 23,
                                .tier1_count = 2,
                                .transit_count = 5,
                                .stub_count = 20,
                                .vp_count = 3,
                                .hierarchical = true};
  SyntheticInternet a(options);
  SyntheticInternet b(options);
  ASSERT_EQ(a.topology().router_count(), b.topology().router_count());
  EXPECT_EQ(a.topology().link_count(), b.topology().link_count());
  for (std::size_t i = 0; i < a.topology().router_count(); ++i) {
    EXPECT_EQ(a.topology().routers()[i].loopback,
              b.topology().routers()[i].loopback);
  }
}

}  // namespace
}  // namespace wormhole::gen
