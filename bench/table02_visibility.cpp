// Table 2: visibility effects of the basic MPLS configurations — LDP
// advertising policy × traceroute target × TTL propagation policy — each
// cell measured on the Fig. 2 testbed (Juniper LERs for the gap column).
#include <iostream>

#include "analysis/report.h"
#include "bench/common.h"
#include "gen/gns3.h"
#include "probe/prober.h"
#include "reveal/frpla.h"
#include "reveal/rtla.h"

namespace {

using namespace wormhole;

struct Cell {
  bool explicit_lsp = false;  // labels quoted
  bool visible = false;       // interior hops appear
  bool shift = false;         // FRPLA-positive RFA at the egress
  bool gap = false;           // RTLA gap > 0 (needs <255,64> egress)
};

Cell Measure(mpls::LdpPolicy ldp, bool propagate, bool external,
             topo::Vendor vendor) {
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kDefault, .as2_vendor = vendor});
  mpls::MplsConfigMap::AsOptions options;
  options.ttl_propagate = propagate;
  options.ldp_policy = ldp;
  testbed.configs().EnableAs(2, options);
  testbed.Reconverge();

  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const auto trace =
      prober.Traceroute(testbed.Address(external ? "CE2.left" : "PE2.left"));

  Cell cell;
  cell.explicit_lsp = trace.HasExplicitMpls();
  for (const char* lsr : {"P1.left", "P2.left", "P3.left"}) {
    if (trace.HopOf(testbed.Address(lsr))) cell.visible = true;
  }
  // Egress = last AS2 time-exceeded hop.
  const probe::Hop* egress = nullptr;
  for (const auto& hop : trace.hops) {
    if (hop.address &&
        hop.reply_kind == netbase::PacketKind::kTimeExceeded &&
        testbed.topology().AsOfAddress(*hop.address) == 2) {
      egress = &hop;
    }
  }
  if (egress != nullptr) {
    const auto rfa = reveal::ObserveRfa(*egress);
    cell.shift = rfa && rfa->rfa() > 0;
    const auto ping = prober.Ping(*egress->address);
    if (ping.responded) {
      const auto rtla = reveal::ObserveRtla(
          *egress->address, egress->reply_ip_ttl, ping.reply_ip_ttl);
      cell.gap = rtla && rtla->return_tunnel_length() > 0;
    }
  }
  return cell;
}

std::string Describe(const Cell& c) {
  std::string out = c.explicit_lsp ? "explicit LSP"
                    : c.visible    ? "route visible, no labels"
                                   : "invisible LSP";
  out += c.shift ? " | shift" : " | no shift";
  out += c.gap ? " | gap" : " | no gap";
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Visibility of basic MPLS configurations (measured cells)", "Table 2");
  analysis::TextTable table(
      {"LDP policy", "target", "ttl-propagate", "no-ttl-propagate (Cisco)",
       "no-ttl-propagate (Juniper LER)"});
  for (const auto ldp :
       {mpls::LdpPolicy::kAllPrefixes, mpls::LdpPolicy::kLoopbacksOnly}) {
    for (const bool external : {true, false}) {
      const Cell propagate = Measure(ldp, true, external,
                                     topo::Vendor::kCiscoIos);
      const Cell cisco = Measure(ldp, false, external,
                                 topo::Vendor::kCiscoIos);
      const Cell juniper = Measure(ldp, false, external,
                                   topo::Vendor::kJuniperJunos);
      table.AddRow({ldp == mpls::LdpPolicy::kAllPrefixes
                        ? "all internal prefixes"
                        : "loopbacks only",
                    external ? "external" : "internal",
                    Describe(propagate), Describe(cisco),
                    Describe(juniper)});
    }
  }
  std::cout << table.ToString();
  std::cout <<
      "\npaper shape: ttl-propagate => explicit, no shift/gap;"
      "\n  no-ttl-propagate + external => invisible + shift (FRPLA), gap only"
      " for <255,64> LERs (RTLA);"
      "\n  no-ttl-propagate + internal => last hop leaks (BRPR, all-prefix)"
      " or full route leaks (DPR, loopback-only).\n";
  return 0;
}
