# Empty compiler generated dependencies file for test_uhp_trigger.
# This may be replaced when dependencies are built.
