// LDP (RFC 5036) in converged form.
//
// We do not simulate session establishment; we compute the steady state the
// protocol converges to: for every MPLS-enabled router and every FEC its
// policy allows, a label binding advertised to all neighbors (downstream
// unsolicited, liberal retention — a router advertises the *same* label for
// a FEC to every neighbor, as the paper notes in Sec. 2.1).
//
// A router that reaches a FEC over a directly connected interface is an
// Egress LER for it and advertises implicit-null (PHP) or explicit-null
// (UHP), which is what places the pop at the penultimate hop.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "mpls/config.h"
#include "netbase/ipv4.h"
#include "netbase/label.h"
#include "routing/fib.h"
#include "topo/topology.h"

namespace wormhole::mpls {

using netbase::Prefix;
using topo::RouterId;

enum class BindingKind : std::uint8_t {
  kLabel,         ///< ordinary label: upstream swaps to it
  kImplicitNull,  ///< label 3: upstream pops (PHP)
  kExplicitNull,  ///< label 0: upstream swaps to 0; egress pops (UHP)
};

struct Binding {
  BindingKind kind = BindingKind::kLabel;
  std::uint32_t label = 0;  ///< meaningful for kLabel only

  friend bool operator==(const Binding&, const Binding&) = default;
};

/// The converged label state of one MPLS-enabled AS.
class LdpDomain {
 public:
  /// Computes bindings for every enabled router of `asn`. `fibs` must
  /// already contain the IGP routes (FECs are taken from the RIB).
  LdpDomain(const topo::Topology& topology, const MplsConfigMap& configs,
            topo::AsNumber asn, const std::vector<routing::Fib>& fibs);

  /// The binding `advertiser` distributes for `fec`; nullopt when the
  /// router does not advertise that FEC (policy filter / not in RIB /
  /// MPLS disabled).
  [[nodiscard]] std::optional<Binding> BindingOf(RouterId advertiser,
                                                 const Prefix& fec) const;

  /// Reverse lookup: which FEC does `label` select on `router`?
  [[nodiscard]] std::optional<Prefix> FecOfLabel(RouterId router,
                                                 std::uint32_t label) const;

  /// All FECs `router` advertises (tests / reports).
  [[nodiscard]] std::vector<Prefix> FecsOf(RouterId router) const;

  [[nodiscard]] topo::AsNumber asn() const { return asn_; }

 private:
  struct RouterTables {
    std::unordered_map<Prefix, Binding> bindings;
    std::unordered_map<std::uint32_t, Prefix> label_to_fec;
  };

  topo::AsNumber asn_ = 0;
  std::unordered_map<RouterId, RouterTables> tables_;
};

/// All LDP domains of a topology, keyed by AS. ASes without any MPLS-enabled
/// router get no domain.
class LdpTables {
 public:
  LdpTables() = default;
  LdpTables(const topo::Topology& topology, const MplsConfigMap& configs,
            const std::vector<routing::Fib>& fibs);

  [[nodiscard]] const LdpDomain* DomainOf(topo::AsNumber asn) const;

 private:
  std::unordered_map<topo::AsNumber, LdpDomain> domains_;
};

}  // namespace wormhole::mpls
