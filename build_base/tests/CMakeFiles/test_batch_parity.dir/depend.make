# Empty dependencies file for test_batch_parity.
# This may be replaced when dependencies are built.
