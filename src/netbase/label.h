// MPLS label stack entries (RFC 3032).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wormhole::netbase {

/// Reserved MPLS label values (RFC 3032 §2.1).
enum class ReservedLabel : std::uint32_t {
  kIpv4ExplicitNull = 0,  ///< advertised by an Egress LER requesting UHP
  kRouterAlert = 1,
  kIpv6ExplicitNull = 2,
  kImplicitNull = 3,      ///< advertised by an Egress LER requesting PHP
};

constexpr std::uint32_t kFirstUnreservedLabel = 16;
constexpr std::uint32_t kMaxLabel = (1u << 20) - 1;

/// One label stack entry: 20-bit label, 3-bit traffic class, bottom-of-stack
/// flag and an 8-bit TTL with the same role as the IP TTL (RFC 3443).
struct LabelStackEntry {
  std::uint32_t label = 0;
  std::uint8_t traffic_class = 0;
  bool bottom_of_stack = true;
  std::uint8_t ttl = 0;

  friend bool operator==(const LabelStackEntry&,
                         const LabelStackEntry&) = default;
};

/// A full label stack, top of stack first (index 0).
using LabelStack = std::vector<LabelStackEntry>;

/// Renders "Label 19 TTL=1" like the paris-traceroute output of Fig. 4a.
inline std::string ToString(const LabelStackEntry& lse) {
  return "Label " + std::to_string(lse.label) +
         " TTL=" + std::to_string(static_cast<int>(lse.ttl));
}

inline bool IsReserved(std::uint32_t label) {
  return label < kFirstUnreservedLabel;
}

}  // namespace wormhole::netbase
