# Empty dependencies file for test_convergence_parity.
# This may be replaced when dependencies are built.
